package query

import (
	"sort"
	"sync/atomic"

	"qkbfly/internal/kb/store"
)

// The executor is a backtracking nested-loop join whose per-clause
// input is a store.TreeCursor prefix scan: each step resolves whatever
// terms the plan has bound so far into the longest usable dedup-key
// prefix (subject, or subject+relation) and the longest usable POS-key
// prefix (relation, or relation+object), binary-searches both ranges in
// every run, opens the narrower one, and streams candidates with
// cross-run winner resolution done by the cursor itself. Nothing is
// materialized: a query touches only the key ranges its bound terms
// select, and rows are produced incrementally, so limit-k queries stop
// after k distinct rows.

// Process-wide access-path counters: posScans counts frames opened on
// the POS index, fullScans frames that had no usable prefix on either
// index and scanned every run end to end. The serving layer surfaces
// them through /stats (index_pos_scans / index_full_scans) so index
// selection is observable in production.
var indexPOSScans, indexFullScans atomic.Int64

// IndexCounters returns the cumulative access-path counters.
func IndexCounters() (posScans, fullScans int64) {
	return indexPOSScans.Load(), indexFullScans.Load()
}

// mode classifies how a step treats one term position, fixed at plan
// time (resolved-ness is static per plan position).
type mode int

const (
	modeConst mode = iota // constant — verify against the fact
	modeBound             // variable bound by an earlier step — verify
	modeBind              // variable first introduced here — bind from the fact
	modeWild              // wildcard — unconstrained
)

// step is the static execution recipe for one planned clause.
type step struct {
	c                           Clause
	subjMode, predMode, objMode mode
	subjVar, predVar, objVar    string
	// predIntra/objIntra mark modeBound variables introduced by an
	// earlier position of this same clause (e.g. ?x r ?x): their value
	// exists only after this fact's earlier positions bind, so the
	// comparison key is computed per admitted fact, not per frame.
	predIntra, objIntra bool
	binds               []string // vars this step introduces; unbound on backtrack
}

// buildSteps compiles (clauses, execution order) into steps, threading
// the bound-variable set exactly as the planner did.
func buildSteps(clauses []Clause, order []int, ambient map[string]bool) []step {
	bound := make(map[string]bool, len(ambient))
	for v := range ambient {
		bound[v] = true
	}
	steps := make([]step, len(order))
	for d, ci := range order {
		c := clauses[ci]
		st := &steps[d]
		st.c = c
		classify := func(t Term) (mode, string) {
			switch t.Kind {
			case TermWild:
				return modeWild, ""
			case TermConst:
				return modeConst, ""
			default:
				if bound[t.Name] {
					return modeBound, t.Name
				}
				bound[t.Name] = true
				st.binds = append(st.binds, t.Name)
				return modeBind, t.Name
			}
		}
		st.subjMode, st.subjVar = classify(c.Subject)
		st.predMode, st.predVar = classify(c.Predicate)
		st.predIntra = st.predMode == modeBound && st.subjMode == modeBind && st.predVar == st.subjVar
		st.objMode, st.objVar = classify(c.Object)
		st.objIntra = st.objMode == modeBound &&
			((st.subjMode == modeBind && st.objVar == st.subjVar) ||
				(st.predMode == modeBind && st.objVar == st.predVar))
	}
	return steps
}

// frame is the runtime state of one step: its prefix cursor plus the
// extension fan-out of the currently admitted fact.
type frame struct {
	cur     *store.TreeCursor
	subjKey string // resolved subject key (modeConst/modeBound)
	relKey  string // resolved relation key (modeConst / non-intra modeBound)
	objKey  string // resolved object key (modeConst / non-intra modeBound)
	dead    bool   // a resolved term can never match (e.g. entity-valued predicate)
	fact    store.Fact
	exts    []store.Value // object extensions of fact; one sentinel unless objMode is modeBind
	extKeys []string      // scratch: dedup keys of exts
	extPos  int
	one     [1]store.Value
}

// Rows streams a query's distinct answer rows in deterministic executor
// order. Obtain one from Run; it is single-goroutine (not safe for
// concurrent use) and reads a fixed immutable tree, so it stays valid
// however long the caller holds it.
type Rows struct {
	tree     *store.Tree
	clauses  []Clause
	tau      float64
	limit    int
	order    []int
	preFacts map[int]store.Fact
	steps    []step
	frames   []*frame
	facts    []store.Fact // supporting fact per depth
	depth    int
	bind     map[string]store.Value
	seen     map[string]bool
	emitted  int
	done     bool
}

// Run plans p against t and returns a streaming row iterator.
func Run(t *store.Tree, p *Pattern) (*Rows, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	return runSub(t, p.Clauses, PlanQuery(t, p).Order, p.Tau, p.Limit, nil, nil), nil
}

// runSub starts an executor over a subset of clauses (order holds
// clause indexes) with optional seed bindings and pre-satisfied clause
// facts — the shared core of Run and EvalDelta.
func runSub(t *store.Tree, clauses []Clause, order []int, tau float64, limit int,
	seed map[string]store.Value, preFacts map[int]store.Fact) *Rows {
	r := &Rows{
		tree:     t,
		clauses:  clauses,
		tau:      tau,
		limit:    limit,
		order:    order,
		preFacts: preFacts,
		frames:   make([]*frame, len(order)),
		facts:    make([]store.Fact, len(order)),
		bind:     make(map[string]store.Value, len(seed)+3*len(order)),
		seen:     make(map[string]bool),
	}
	ambient := make(map[string]bool, len(seed))
	for n, v := range seed {
		r.bind[n] = v
		ambient[n] = true
	}
	r.steps = buildSteps(clauses, order, ambient)
	return r
}

// Next yields the next distinct row, or ok=false when the query is
// exhausted (or the limit reached).
func (r *Rows) Next() (Row, bool) {
	for !r.done {
		if r.limit > 0 && r.emitted >= r.limit {
			r.done = true
			break
		}
		if r.depth == len(r.order) {
			// Full assignment: resume from the deepest frame afterwards.
			r.depth--
			if r.depth < 0 {
				r.done = true
			}
			if row, fresh := r.captureRow(); fresh {
				r.emitted++
				return row, true
			}
			continue
		}
		fr := r.frames[r.depth]
		if fr == nil {
			fr = r.newFrame(r.depth)
			r.frames[r.depth] = fr
		}
		if r.stepFrame(fr, &r.steps[r.depth]) {
			r.depth++
			continue
		}
		r.frames[r.depth] = nil
		for _, n := range r.steps[r.depth].binds {
			delete(r.bind, n)
		}
		r.depth--
		if r.depth < 0 {
			r.done = true
		}
	}
	return Row{}, false
}

// Collect drains the iterator.
func (r *Rows) Collect() []Row {
	var out []Row
	for {
		row, ok := r.Next()
		if !ok {
			return out
		}
		out = append(out, row)
	}
}

// newFrame resolves the step's bound terms against the current bindings
// and opens the longest index prefix they determine.
func (r *Rows) newFrame(d int) *frame {
	st := &r.steps[d]
	fr := &frame{}
	prefix := ""
	switch st.subjMode {
	case modeConst:
		fr.subjKey = store.ValueKey(st.c.Subject.Value)
	case modeBound:
		fr.subjKey = store.ValueKey(r.bind[st.subjVar])
	}
	if st.subjMode == modeConst || st.subjMode == modeBound {
		prefix = fr.subjKey + "|"
	}
	switch {
	case st.predMode == modeConst:
		fr.relKey = store.RelKey(st.c.Predicate.Value.Literal)
	case st.predMode == modeBound && !st.predIntra:
		v := r.bind[st.predVar]
		if v.IsEntity() {
			fr.dead = true // an entity value can never name a relation
		}
		fr.relKey = store.RelKey(v.Literal)
	}
	if prefix != "" && (st.predMode == modeConst || (st.predMode == modeBound && !st.predIntra)) {
		// No trailing separator: zero-object fact keys end at the
		// relation. The relKey verification below screens out relations
		// that merely extend this one.
		prefix += fr.relKey
	}
	switch {
	case st.objMode == modeConst:
		fr.objKey = store.ValueKey(st.c.Object.Value)
	case st.objMode == modeBound && !st.objIntra:
		fr.objKey = store.ValueKey(r.bind[st.objVar])
	}
	// Runtime access-path selection: a resolved predicate offers a second
	// contiguous range on the POS index, narrowed further by a resolved
	// object. Both prefixes are costed exactly (binary-searched range
	// widths over the live runs) and the narrower index wins; admit
	// re-verifies every resolved term, so either prefix over-approximating
	// is safe. Ties keep the subject-first index.
	if !fr.dead && (st.predMode == modeConst || (st.predMode == modeBound && !st.predIntra)) {
		objKey := ""
		if st.objMode == modeConst || (st.objMode == modeBound && !st.objIntra) {
			objKey = fr.objKey
		}
		posPrefix := store.POSPrefix(fr.relKey, objKey)
		if r.tree.EstimatePOSPrefix(posPrefix) < r.tree.EstimatePrefix(prefix) {
			indexPOSScans.Add(1)
			fr.cur = r.tree.ScanPOSPrefix(posPrefix)
			return fr
		}
	}
	if prefix == "" {
		indexFullScans.Add(1)
	}
	fr.cur = r.tree.ScanPrefix(prefix)
	return fr
}

// stepFrame advances the frame to its next extension, admitting new
// facts from the cursor as needed, and applies the extension's bindings.
// It returns false when the frame is exhausted.
func (r *Rows) stepFrame(fr *frame, st *step) bool {
	if fr.dead {
		return false
	}
	for {
		if fr.extPos < len(fr.exts) {
			v := fr.exts[fr.extPos]
			fr.extPos++
			// Re-assert the admitted fact's subject/predicate bindings:
			// a sibling extension of the previous fact may have left
			// stale values (admit set them once per fact).
			if st.subjMode == modeBind {
				r.bind[st.subjVar] = fr.fact.Subject
			}
			if st.predMode == modeBind {
				r.bind[st.predVar] = store.Value{Literal: fr.fact.Relation}
			}
			if st.objMode == modeBind {
				r.bind[st.objVar] = v
			}
			r.facts[r.depth] = fr.fact
			return true
		}
		_, f, ok := fr.cur.Next()
		if !ok {
			return false
		}
		if f.Confidence < r.tau {
			continue
		}
		if r.admit(fr, st, f) {
			fr.extPos = 0
		}
	}
}

// admit verifies the fact against the step's resolved terms, binds its
// introduced subject/predicate variables, and prepares the object
// extension list. It returns false (leaving fr.exts empty) on mismatch.
func (r *Rows) admit(fr *frame, st *step, f store.Fact) bool {
	fr.exts = fr.exts[:0]
	switch st.subjMode {
	case modeConst, modeBound:
		// The prefix over-approximates (a literal subject may itself
		// contain the key separator), so equality is re-checked.
		if store.ValueKey(f.Subject) != fr.subjKey {
			return false
		}
	case modeBind:
		r.bind[st.subjVar] = f.Subject
	}
	switch st.predMode {
	case modeConst:
		if store.RelKey(f.Relation) != fr.relKey {
			return false
		}
	case modeBound:
		rk := fr.relKey
		if st.predIntra {
			v := r.bind[st.predVar]
			if v.IsEntity() {
				return false
			}
			rk = store.RelKey(v.Literal)
		}
		if store.RelKey(f.Relation) != rk {
			return false
		}
	case modeBind:
		r.bind[st.predVar] = store.Value{Literal: f.Relation}
	}
	switch st.objMode {
	case modeWild:
		fr.exts = fr.one[:1]
	case modeConst, modeBound:
		want := fr.objKey
		if st.objIntra {
			want = store.ValueKey(r.bind[st.objVar])
		}
		found := false
		for i := range f.Objects {
			if store.ValueKey(f.Objects[i]) == want {
				found = true
				break
			}
		}
		if !found {
			return false
		}
		fr.exts = fr.one[:1]
	case modeBind:
		// One extension per distinct object value of this fact.
		fr.extKeys = fr.extKeys[:0]
	objects:
		for _, o := range f.Objects {
			k := store.ValueKey(o)
			for _, prev := range fr.extKeys {
				if prev == k {
					continue objects
				}
			}
			fr.extKeys = append(fr.extKeys, k)
			fr.exts = append(fr.exts, o)
		}
		if len(fr.exts) == 0 {
			return false // a variable needs at least one object to bind
		}
	}
	fr.fact = f
	return true
}

// captureRow snapshots the current full assignment; fresh is false when
// an identical row (same bindings) was already emitted.
func (r *Rows) captureRow() (Row, bool) {
	row := Row{
		Bindings: make(map[string]store.Value, len(r.bind)),
		Facts:    make([]store.Fact, len(r.clauses)),
	}
	for n, v := range r.bind {
		row.Bindings[n] = v
	}
	for ci, f := range r.preFacts {
		row.Facts[ci] = f
	}
	for d, ci := range r.order {
		row.Facts[ci] = r.facts[d]
	}
	key := row.Key()
	if r.seen[key] {
		return Row{}, false
	}
	r.seen[key] = true
	return row, true
}

// bindExt is one way a single fact can satisfy a single clause: the
// variables it would newly bind. Shared by the reference scanner and
// delta seeding.
type bindExt struct {
	names []string
	vals  []store.Value
}

// clauseMatches enumerates the extensions under which fact f satisfies
// clause c given existing bindings (nil allowed). Matching follows the
// package contract: index equality, per-object-position object terms,
// wildcard ignoring arity.
func clauseMatches(c Clause, f store.Fact, bind map[string]store.Value) []bindExt {
	var pend bindExt
	lookup := func(name string) (store.Value, bool) {
		for i, n := range pend.names {
			if n == name {
				return pend.vals[i], true
			}
		}
		v, ok := bind[name]
		return v, ok
	}
	// Subject.
	switch c.Subject.Kind {
	case TermConst:
		if store.ValueKey(f.Subject) != store.ValueKey(c.Subject.Value) {
			return nil
		}
	case TermVar:
		if v, ok := lookup(c.Subject.Name); ok {
			if store.ValueKey(f.Subject) != store.ValueKey(v) {
				return nil
			}
		} else {
			pend.names = append(pend.names, c.Subject.Name)
			pend.vals = append(pend.vals, f.Subject)
		}
	}
	// Predicate.
	switch c.Predicate.Kind {
	case TermConst:
		if store.RelKey(f.Relation) != store.RelKey(c.Predicate.Value.Literal) {
			return nil
		}
	case TermVar:
		if v, ok := lookup(c.Predicate.Name); ok {
			if v.IsEntity() || store.RelKey(f.Relation) != store.RelKey(v.Literal) {
				return nil
			}
		} else {
			pend.names = append(pend.names, c.Predicate.Name)
			pend.vals = append(pend.vals, store.Value{Literal: f.Relation})
		}
	}
	// Object.
	switch c.Object.Kind {
	case TermWild:
		return []bindExt{pend}
	case TermConst:
		want := store.ValueKey(c.Object.Value)
		for i := range f.Objects {
			if store.ValueKey(f.Objects[i]) == want {
				return []bindExt{pend}
			}
		}
		return nil
	default: // TermVar
		if v, ok := lookup(c.Object.Name); ok {
			want := store.ValueKey(v)
			for i := range f.Objects {
				if store.ValueKey(f.Objects[i]) == want {
					return []bindExt{pend}
				}
			}
			return nil
		}
		var out []bindExt
		var seenKeys []string
	objects:
		for _, o := range f.Objects {
			k := store.ValueKey(o)
			for _, prev := range seenKeys {
				if prev == k {
					continue objects
				}
			}
			seenKeys = append(seenKeys, k)
			ext := bindExt{
				names: append(append([]string(nil), pend.names...), c.Object.Name),
				vals:  append(append([]store.Value(nil), pend.vals...), o),
			}
			out = append(out, ext)
		}
		return out
	}
}

// ScanKB is the reference evaluator: a naive nested-loop scan over a
// materialized KB's fact slice, in the pattern's written clause order.
// It defines the result set the streaming engine must reproduce (the
// property tests compare the two), and doubles as the
// scan-after-materialize baseline in the benchmark harness.
func ScanKB(kb *store.KB, p *Pattern) []Row {
	if kb == nil || p.validate() != nil {
		return nil
	}
	facts := kb.Facts()
	bind := map[string]store.Value{}
	rowFacts := make([]store.Fact, len(p.Clauses))
	seen := map[string]bool{}
	var out []Row
	var rec func(ci int) bool
	rec = func(ci int) bool {
		if ci == len(p.Clauses) {
			row := Row{
				Bindings: make(map[string]store.Value, len(bind)),
				Facts:    append([]store.Fact(nil), rowFacts...),
			}
			for n, v := range bind {
				row.Bindings[n] = v
			}
			key := row.Key()
			if seen[key] {
				return false
			}
			seen[key] = true
			out = append(out, row)
			return p.Limit > 0 && len(out) >= p.Limit
		}
		for i := range facts {
			if facts[i].Confidence < p.Tau {
				continue
			}
			for _, ext := range clauseMatches(p.Clauses[ci], facts[i], bind) {
				for j, n := range ext.names {
					bind[n] = ext.vals[j]
				}
				rowFacts[ci] = facts[i]
				stop := rec(ci + 1)
				for _, n := range ext.names {
					delete(bind, n)
				}
				if stop {
					return true
				}
			}
		}
		return false
	}
	rec(0)
	return out
}

// EvalDelta evaluates a standing pattern incrementally against one
// store.Delta: every added or upgraded fact is seeded into each clause
// it satisfies, and the remaining clauses are planned (with the seed's
// variables pre-bound) and streamed against the post-delta tree. The
// result is every match of p in t that involves at least one changed
// fact — the increment a filtered watch emits — deduplicated, sorted by
// Row.Key, and truncated to p.Limit. A match whose seed fact was merely
// upgraded (not newly added) re-emits with the upgraded evidence.
func EvalDelta(t *store.Tree, p *Pattern, d store.Delta) []Row {
	if t == nil || p.validate() != nil {
		return nil
	}
	seen := map[string]bool{}
	var out []Row
	evalSeed := func(ci int, f store.Fact) {
		if f.Confidence < p.Tau {
			return
		}
		for _, ext := range clauseMatches(p.Clauses[ci], f, nil) {
			seed := make(map[string]store.Value, len(ext.names))
			boundSet := make(map[string]bool, len(ext.names))
			for i, n := range ext.names {
				seed[n] = ext.vals[i]
				boundSet[n] = true
			}
			restIdx := make([]int, 0, len(p.Clauses)-1)
			restClauses := make([]Clause, 0, len(p.Clauses)-1)
			for i, c := range p.Clauses {
				if i != ci {
					restIdx = append(restIdx, i)
					restClauses = append(restClauses, c)
				}
			}
			plan := planClauses(t, restClauses, boundSet)
			order := make([]int, len(plan.Order))
			for k, ri := range plan.Order {
				order[k] = restIdx[ri]
			}
			rows := runSub(t, p.Clauses, order, p.Tau, 0, seed, map[int]store.Fact{ci: f})
			for {
				row, ok := rows.Next()
				if !ok {
					break
				}
				if key := row.Key(); !seen[key] {
					seen[key] = true
					out = append(out, row)
				}
			}
		}
	}
	for ci := range p.Clauses {
		for _, f := range d.Added {
			evalSeed(ci, f)
		}
		for _, f := range d.Upgraded {
			evalSeed(ci, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	if p.Limit > 0 && len(out) > p.Limit {
		out = out[:p.Limit]
	}
	return out
}

// Verify re-checks one complete binding assignment against the current
// tree: it reports whether bindings (which must cover every variable of
// p) still form an answer row of p, and returns the row with its
// supporting facts refreshed to the tree's current winners. This is the
// row-level re-check cached answers go through when a delta removes or
// upgrades a fact a row cited — the row may survive on alternate
// support, so dropping it outright would under-answer.
func Verify(t *store.Tree, p *Pattern, bindings map[string]store.Value) (Row, bool) {
	if t == nil || p.validate() != nil {
		return Row{}, false
	}
	seed := make(map[string]store.Value, len(bindings))
	boundSet := make(map[string]bool, len(bindings))
	for n, v := range bindings {
		seed[n] = v
		boundSet[n] = true
	}
	plan := planClauses(t, p.Clauses, boundSet)
	return runSub(t, p.Clauses, plan.Order, p.Tau, 1, seed, nil).Next()
}
