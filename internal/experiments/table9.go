package experiments

import (
	"fmt"
	"strings"

	"qkbfly"
	"qkbfly/internal/eval"
	"qkbfly/internal/kb/entityrepo"
	"qkbfly/internal/qa"
	"qkbfly/internal/svm"
)

// Table9Row is one QA system's macro-averaged result.
type Table9Row struct {
	Method string
	PRF    eval.PRF
}

// Table9Result reproduces the ad-hoc QA evaluation of §7.4 (Table 9 plus
// the AQQU end-to-end comparison and the Wikipedia-only / news-only
// ablations).
type Table9Result struct {
	Rows      []Table9Row
	Questions int
}

// RunTable9 trains the answer classifier on WebQuestions-style training
// questions generated from background facts, then evaluates all systems
// on the GoogleTrendsQuestions-style benchmark.
func RunTable9(env *Env, trainQuestions int) *Table9Result {
	sys := env.System(qkbfly.Joint, qkbfly.Greedy)
	base := &qa.System{
		QKB: sys, Repo: env.World.Repo, Index: env.Index, NewsSize: 10,
	}
	model := TrainQAModel(env, base, trainQuestions)
	base.Model = model

	static := env.StaticKB()
	bench := env.World.QABenchmark()

	systems := []qa.Answerer{
		base,
		&qa.System{SystemName: "QKBfly-triples", QKB: sys, Repo: env.World.Repo,
			Index: env.Index, NewsSize: 10, Model: model, TriplesOnly: true},
		&qa.SentenceAnswers{Base: base, Model: model},
		&qa.StaticKB{Base: base, KB: static, Model: model},
		&qa.AQQU{Base: base, KB: static, Patterns: env.World.Patterns},
		&qa.System{SystemName: "QKBfly (Wikipedia only)", QKB: sys, Repo: env.World.Repo,
			Index: env.Index, NewsSize: 10, Model: model, Sources: "wikipedia"},
		&qa.System{SystemName: "QKBfly (news only)", QKB: sys, Repo: env.World.Repo,
			Index: env.Index, NewsSize: 10, Model: model, Sources: "news"},
	}

	res := &Table9Result{Questions: len(bench)}
	for _, s := range systems {
		var golds, answers [][]string
		for _, q := range bench {
			golds = append(golds, q.Gold)
			answers = append(answers, s.Answer(q.Text))
		}
		prf := eval.QAMetrics(golds, answers, env.MatchAnswer)
		res.Rows = append(res.Rows, Table9Row{Method: s.Name(), PRF: prf})
	}
	return res
}

// String renders Table 9.
func (r *Table9Result) String() string {
	header := []string{"Method", "Precision", "Recall", "F1"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Method, fmt.Sprintf("%.3f", row.PRF.Precision),
			fmt.Sprintf("%.3f", row.PRF.Recall),
			fmt.Sprintf("%.3f", row.PRF.F1),
		})
	}
	return fmt.Sprintf("Table 9: ad-hoc QA on GoogleTrendsQuestions-style benchmark (%d questions)\n", r.Questions) +
		renderTable(header, rows)
}

// MatchAnswer compares a gold answer (entity ID or literal) with a system
// answer (entity ID, "new:" ID, or literal).
func (e *Env) MatchAnswer(gold, answer string) bool {
	if gold == answer {
		return true
	}
	norm := func(s string) string {
		s = strings.TrimPrefix(s, "new:")
		return entityrepo.Normalize(strings.ReplaceAll(s, "_", " "))
	}
	gn, an := norm(gold), norm(answer)
	if gn == an {
		return true
	}
	// Resolve both sides to world entities by name/alias where possible.
	if ge := e.World.Entity(gold); ge != nil {
		if entityrepo.Normalize(ge.Name) == an {
			return true
		}
		for _, al := range ge.Aliases {
			if entityrepo.Normalize(al) == an {
				return true
			}
		}
	}
	// Literal gold: containment.
	if strings.Contains(an, gn) || strings.Contains(gn, an) {
		return gn != "" && an != ""
	}
	return false
}

// TrainQAModel generates WebQuestions-style training questions from
// background facts, runs the candidate pipeline on each, labels candidates
// with the gold answers, and trains the linear SVM (Appendix B).
func TrainQAModel(env *Env, base *qa.System, n int) *svm.Model {
	type tq struct {
		text string
		gold []string
	}
	var tqs []tq
	count := 0
	for i := range env.World.Facts {
		if count >= n {
			break
		}
		f := &env.World.Facts[i]
		if f.EventID >= 0 || len(f.Objects) == 0 {
			continue
		}
		subj := env.World.Entity(f.Subject)
		if subj == nil || subj.Emerging {
			continue
		}
		var text string
		var gold []string
		switch f.Relation {
		case "born_in":
			if f.Objects[0].IsEntity() {
				text = "Where was " + subj.Name + " born?"
				gold = []string{f.Objects[0].EntityID}
			}
		case "married_to":
			if f.Objects[0].IsEntity() {
				text = "Who did " + subj.Name + " marry?"
				gold = []string{f.Objects[0].EntityID}
			}
		case "plays_for":
			if f.Objects[0].IsEntity() {
				text = "Which club does " + subj.Name + " play for?"
				gold = []string{f.Objects[0].EntityID}
			}
		case "founded":
			if f.Objects[0].IsEntity() {
				text = "Which company did " + subj.Name + " found?"
				gold = []string{f.Objects[0].EntityID}
			}
		case "win_award":
			if f.Objects[0].IsEntity() {
				text = "Which award did " + subj.Name + " win?"
				gold = []string{f.Objects[0].EntityID}
			}
		case "studied_at":
			if f.Objects[0].IsEntity() {
				text = "Where did " + subj.Name + " study?"
				gold = []string{f.Objects[0].EntityID}
			}
		}
		if text == "" {
			continue
		}
		count++
		tqs = append(tqs, tq{text: text, gold: gold})
	}

	var examples []svm.Example
	for _, q := range tqs {
		qents := base.QuestionEntities(q.text)
		docs := base.Retrieve(q.text, qents)
		if len(docs) == 0 {
			continue
		}
		kb, _ := base.QKB.BuildKB(docs)
		for _, c := range base.Candidates(q.text, qents, kb) {
			label := false
			for _, g := range q.gold {
				if env.MatchAnswer(g, c.Answer) {
					label = true
					break
				}
			}
			examples = append(examples, svm.Example{Features: c.Features, Label: label})
		}
	}
	opt := svm.DefaultOptions()
	opt.Epochs = 15
	return svm.Train(examples, opt)
}
