// Newsroom: the journalist workflow the paper motivates (§1, §6) — monitor
// emerging events, build a KB over fresh news stories, and surface facts
// about entities that no static knowledge base knows yet.
//
// This version uses the session API: the newsroom holds one long-lived
// qkbfly.Session with a rolling document window, feeds each event's
// stories in as they "arrive", watches new facts stream out, and queries
// immutable snapshots while ingestion continues — instead of rebuilding a
// KB from scratch per query.
package main

import (
	"context"
	"fmt"
	"runtime"

	"qkbfly"
	"qkbfly/internal/corpus"
	"qkbfly/internal/kb/store"
	"qkbfly/internal/nlp/clause"
	"qkbfly/internal/nlp/depparse"
	"qkbfly/internal/query"
	"qkbfly/internal/search"
	"qkbfly/internal/stats"
)

func main() {
	world := corpus.NewWorld(corpus.SmallConfig())
	background := world.BackgroundCorpus()
	pipe := clause.NewPipeline(world.Repo, depparse.Malt)
	st := stats.Build(corpus.Docs(background), world.Repo, pipe)

	// The index holds the news stream (three stories per event).
	news := world.NewsDataset(3)
	index := search.New(corpus.Docs(append(background, news...)))

	sys := qkbfly.New(qkbfly.Resources{
		Repo: world.Repo, Patterns: world.Patterns, Stats: st, Index: index,
	}, qkbfly.DefaultConfig())

	// One long-lived session for the whole newsroom. The rolling window
	// keeps the KB focused on the freshest stories; τ comes from the
	// system config (0.5), so the watcher only sees distilled facts.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sess := sys.OpenSession(qkbfly.SessionOptions{
		BuildOptions: []qkbfly.Option{qkbfly.WithParallelism(runtime.NumCPU())},
		MaxDocuments: 9, // three events' worth of stories
	})
	defer sess.Close()

	// A background watcher counts the live feed — the same facts the
	// per-event replay below prints deterministically.
	live := sess.Watch(ctx)
	watched := make(chan int)
	go func() {
		n := 0
		for range live {
			n++
		}
		watched <- n
	}()

	// A standing filtered watch: the desk tracks confident fully-bound
	// facts as a pattern query. Every published version evaluates the
	// pattern against that version's delta only (the engine seeds the
	// query with the changed facts), so each slide costs work
	// proportional to what changed — the query is never re-run.
	standing, err := query.Parse("?who ?rel ?what")
	if err != nil {
		panic(err)
	}
	standing.Tau = 0.7
	matches := sess.WatchPattern(ctx, standing)
	drainMatches := func() {
		shown := 0
		total := 0
		for {
			select {
			case ev, ok := <-matches:
				if !ok {
					return
				}
				total++
				if shown < 2 {
					fmt.Printf("   standing v%d match: %s %s %s\n", ev.Version,
						ev.Row.Bindings["who"], ev.Row.Bindings["rel"].Literal, ev.Row.Bindings["what"])
					shown++
				}
			default:
				if total > shown {
					fmt.Printf("   standing watch: +%d more matches this slide\n", total-shown)
				}
				return
			}
		}
	}

	// Stories arrive event by event; each ingest pushes only the new
	// documents' segments into the session's merge tree and publishes
	// exactly one version — even when the window slides, the survivors
	// and the increment land together, and the version's key-based diff
	// (store.Diff classes) says precisely what changed.
	for i := range world.Events {
		ev := &world.Events[i]
		if i >= 5 {
			break
		}
		q := ev.Queries[0]
		docs := sys.Retrieve(q, "news", 3)
		before := sess.Version()
		snap, bs, err := sess.Ingest(ctx, docs)
		if err != nil {
			fmt.Printf("== event %d (%s): ingest failed: %v\n", ev.ID, ev.Kind, err)
			continue
		}
		fmt.Printf("== event %d (%s): %q +%d stories -> version %d, %d docs in window, %d facts (%v)\n",
			ev.ID, ev.Kind, q, len(bs.PerDocElapsed), snap.Version(),
			len(sess.Docs()), snap.KB().Len(), bs.Elapsed)
		if snap.Version() != before+1 {
			fmt.Printf("   BUG: sliding ingest published %d versions\n", snap.Version()-before)
		}
		if deltas, _, ok := sess.DeltaSince(before); ok {
			for _, d := range deltas {
				if len(d.Removed) > 0 || len(d.Upgraded) > 0 {
					fmt.Printf("   window slid: +%d facts, -%d rolled out, %d winners changed\n",
						len(d.Added), len(d.Removed), len(d.Upgraded))
				}
			}
		}

		// Replay exactly what this event added (versions after `before`),
		// highlighting emerging entities a static KB cannot contain.
		events, _, ok := sess.FactsSince(before)
		if !ok {
			events = nil // horizon passed (not with default history limits)
		}
		for _, e := range events {
			rec := snap.KB().Entity(e.Fact.Subject.EntityID)
			switch {
			case rec != nil && rec.Emerging:
				fmt.Printf("   v%d EMERGING %s\n", e.Version, e.Fact.String())
			case e.Fact.Confidence >= 0.5:
				fmt.Printf("   v%d %.2f %s\n", e.Version, e.Fact.Confidence, e.Fact.String())
			}
		}

		// The standing watch delivered this version's matches while
		// Ingest was still returning; drain and show them.
		drainMatches()
	}

	// The dashboard can keep querying old snapshots while new stories
	// land; the final snapshot answers the cross-event question.
	snap := sess.Snapshot()
	persons := snap.KB().Search(store.Query{Subject: "Type:PERSON", MinConf: 0.5})
	fmt.Printf("== window now at version %d: %d facts, %d about persons\n",
		snap.Version(), snap.KB().Len(), len(persons))

	sess.Close() // closes the watcher's channel
	fmt.Printf("== watcher saw %d distilled facts stream in live\n", <-watched)
}
