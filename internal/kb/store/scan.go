// Prefix-scan iterators over the segmented store: the read-path
// counterpart of segment.go's merge machinery. A Segment's sorted key
// index is an EAVT-style covering index — dedup keys start with the
// subject's value key, then the lowered relation, then the object value
// keys — so any query that binds a key prefix (a subject, or a subject
// plus relation) resolves to one binary-searched contiguous range per
// run. A second sorted index in POS order (relation, then object value
// key, then the full dedup key — see appendPOSKey) gives clauses with an
// unbound subject the same contiguous-range treatment: a bound predicate
// (optionally narrowed by a bound object) pins one POS range per run
// instead of scanning the world. A TreeCursor merges per-run ranges of
// either index k-way in key order and resolves cross-run duplicates to
// the exact record the materialized KB would hold, which is what lets
// the query engine (internal/query) stream pattern matches straight off
// the runs with no Materialize() on the path.
package store

import (
	"sort"

	"qkbfly/internal/intern"
)

// ValueKey returns the canonical index key of a value — "e:<id>" for
// entity references, "l:<lowered literal>" for literals — the exact form
// dedup keys are assembled from. Query planners build scan prefixes out
// of these.
func ValueKey(v Value) string { return string(appendValueKey(nil, v)) }

// RelKey returns a relation as it appears inside dedup keys (lowered).
func RelKey(rel string) string { return intern.Lower(rel) }

// prefixEnd returns the smallest string greater than every string with
// the given prefix, or "" when no such bound exists (all-0xff prefix —
// the scan runs to the end of the index).
func prefixEnd(prefix string) string {
	for i := len(prefix) - 1; i >= 0; i-- {
		if prefix[i] != 0xff {
			return prefix[:i] + string(prefix[i]+1)
		}
	}
	return ""
}

// prefixRange binary-searches a payload's sorted key index for the
// half-open position range [lo, hi) of keys starting with prefix.
func (d *segData) prefixRange(prefix string) (lo, hi int) {
	lo = sort.Search(len(d.sorted), func(i int) bool { return d.keys[d.sorted[i]] >= prefix })
	if end := prefixEnd(prefix); end != "" {
		hi = lo + sort.Search(len(d.sorted)-lo, func(i int) bool { return d.keys[d.sorted[lo+i]] >= end })
	} else {
		hi = len(d.sorted)
	}
	return lo, hi
}

// POSPrefix assembles a POS-index scan prefix from an already-lowered
// relation key (RelKey) and an optional object value key (ValueKey; ""
// selects the whole relation). The "|" terminators pin the relation —
// and, when given, the object value — exactly, the way the dedup-key
// prefixes ValueKey/RelKey callers assemble pin a subject.
func POSPrefix(relKey, objKey string) string {
	if objKey == "" {
		return relKey + "|"
	}
	return relKey + "|" + objKey + "|"
}

// SegmentCursor streams one segment's facts in index-key order over a
// key-prefix range of either sorted index (EAVT via ScanPrefix, POS via
// ScanPOSPrefix). Returned fact pointers alias the segment's immutable
// storage — read-only, like Segment.Lookup. The cursor pins the payload
// it was opened over, so a concurrent demotion never invalidates it.
type SegmentCursor struct {
	data *segData
	// fi maps cursor positions to fact indices; ks, when non-nil, holds
	// the index key per position (the positional POS index). A nil ks
	// means keys come from the primary index (data.keys[fi[pos]]).
	ks       []string
	fi       []int32
	pos, end int
}

// ScanPrefix returns a cursor over the segment's facts whose dedup key
// starts with prefix ("" scans the whole segment), in key order.
func (s *Segment) ScanPrefix(prefix string) *SegmentCursor {
	d := s.payload()
	lo, hi := d.prefixRange(prefix)
	return &SegmentCursor{data: d, fi: d.sorted, pos: lo, end: hi}
}

// ScanPOSPrefix returns a cursor over the segment's POS index entries
// whose key starts with prefix, in POS-key order. A fact yields once per
// distinct object value matching the prefix (facts without objects carry
// a single zero-object entry), so a relation-wide scan may yield one
// fact several times under distinct keys.
func (s *Segment) ScanPOSPrefix(prefix string) *SegmentCursor {
	d := s.payload()
	ks, fi, lo, hi := d.posRange(prefix)
	return &SegmentCursor{data: d, ks: ks, fi: fi, pos: lo, end: hi}
}

// posRange binary-searches the POS index for the half-open positional
// range of entries whose key starts with prefix, building the index
// first when the payload predates it.
func (d *segData) posRange(prefix string) (ks []string, fi []int32, lo, hi int) {
	ks, fi, _ = d.posIndex()
	lo = sort.Search(len(ks), func(i int) bool { return ks[i] >= prefix })
	if end := prefixEnd(prefix); end != "" {
		hi = lo + sort.Search(len(ks)-lo, func(i int) bool { return ks[lo+i] >= end })
	} else {
		hi = len(ks)
	}
	return ks, fi, lo, hi
}

// Remaining returns how many facts the cursor has left to yield.
func (c *SegmentCursor) Remaining() int { return c.end - c.pos }

// Next yields the next (key, fact) in key order, or ok=false when the
// range is exhausted.
func (c *SegmentCursor) Next() (key string, f *Fact, ok bool) {
	if c.pos >= c.end {
		return "", nil, false
	}
	i := c.fi[c.pos]
	if c.ks != nil {
		key = c.ks[c.pos]
	} else {
		key = c.data.keys[i]
	}
	c.pos++
	return key, &c.data.facts[i], true
}

// EstimatePrefix returns the number of facts across the tree's runs whose
// key starts with prefix — an upper bound on the distinct keys in the
// range (cross-run duplicates collapse), computed by binary search alone.
// This is the statistics-free selectivity estimate the query planner
// orders clauses by.
func (t *Tree) EstimatePrefix(prefix string) int {
	n := 0
	for _, r := range t.runs {
		lo, hi := r.seg.payload().prefixRange(prefix)
		n += hi - lo
	}
	return n
}

// EstimatePOSPrefix is EstimatePrefix over the POS index: the exact
// per-run count of POS entries (facts × matching object values) under
// the prefix, summed across runs. The planner compares it against the
// EAVT estimate to cost the two access paths per clause.
func (t *Tree) EstimatePOSPrefix(prefix string) int {
	n := 0
	for _, r := range t.runs {
		_, _, lo, hi := r.seg.payload().posRange(prefix)
		n += hi - lo
	}
	return n
}

// TreeCursor streams the winning fact per dedup key across all of a
// tree's runs, in key order, over a key-prefix range. Each yielded fact
// is exactly the record the materialized KB holds for that key: the
// oldest run's occurrence supplies the spelling (Relation, Objects,
// Subject), and Confidence, Source and Pattern come from folding the
// newer runs' records under the AddFact winner rule (higher confidence,
// then smaller provenance). Fact IDs are -1 — IDs are local to one
// materialized KB (see Delta) — and Objects alias immutable segment
// storage, so yielded facts are read-only.
type TreeCursor struct {
	runs []*SegmentCursor
	// cur holds each run's current (key, fact); valid[i] is false once
	// run i is exhausted.
	keys  []string
	facts []*Fact
	valid []bool
}

// ScanPrefix returns a merged cursor over the winning facts of every
// dedup key starting with prefix ("" scans the whole tree), in key
// order. The k-way merge walks the O(log W) runs' binary-searched ranges
// directly — no materialization, no map building.
func (t *Tree) ScanPrefix(prefix string) *TreeCursor {
	return t.mergedScan(func(s *Segment) *SegmentCursor { return s.ScanPrefix(prefix) })
}

// ScanPOSPrefix returns a merged cursor over the tree's POS index under
// a POS-key prefix (see POSPrefix), with the same cross-run winner
// folding as ScanPrefix: equal POS keys embed equal dedup keys, so
// duplicates across runs fold to exactly the record the materialized KB
// holds. A fact with several matching object values yields once per
// value, under distinct keys.
func (t *Tree) ScanPOSPrefix(prefix string) *TreeCursor {
	return t.mergedScan(func(s *Segment) *SegmentCursor { return s.ScanPOSPrefix(prefix) })
}

// mergedScan opens one per-run cursor via open and wires the k-way merge.
func (t *Tree) mergedScan(open func(*Segment) *SegmentCursor) *TreeCursor {
	c := &TreeCursor{
		runs:  make([]*SegmentCursor, len(t.runs)),
		keys:  make([]string, len(t.runs)),
		facts: make([]*Fact, len(t.runs)),
		valid: make([]bool, len(t.runs)),
	}
	for i, r := range t.runs {
		c.runs[i] = open(r.seg)
		c.advance(i)
	}
	return c
}

// advance pulls run i's next entry into the cursor head.
func (c *TreeCursor) advance(i int) {
	c.keys[i], c.facts[i], c.valid[i] = c.runs[i].Next()
}

// Next yields the next key's winning fact, or ok=false at the end of the
// range. Runs are few (O(log W)), so the per-step minimum is a linear
// scan over the cursor heads.
func (c *TreeCursor) Next() (key string, f Fact, ok bool) {
	min := -1
	for i := range c.runs {
		if c.valid[i] && (min < 0 || c.keys[i] < c.keys[min]) {
			min = i
		}
	}
	if min < 0 {
		return "", Fact{}, false
	}
	key = c.keys[min]
	// The oldest run holding the key supplies the base record (first
	// occurrence — its spelling survives materialization); newer runs
	// fold in under the winner rule and their cursors advance past the
	// shared key.
	f = *c.facts[min]
	f.ID = -1
	c.advance(min)
	for i := min + 1; i < len(c.runs); i++ {
		if !c.valid[i] || c.keys[i] != key {
			continue
		}
		dup := c.facts[i]
		if dup.Confidence > f.Confidence ||
			(dup.Confidence == f.Confidence && provLess(dup.Source, f.Source)) {
			f.Confidence = dup.Confidence
			f.Source = dup.Source
			f.Pattern = dup.Pattern
		}
		c.advance(i)
	}
	return key, f, true
}

// ContentID returns a compact structural identity for the tree's
// content: the fold of its runs' segment identities, exactly the
// identity MergeSegments would stamp on their full merge. Two trees with
// equal ContentID materialize to byte-identical KBs, so immutable
// snapshot results (query answers, plans) can be cached under it without
// ever materializing. "" means uncacheable — some run contains an
// anonymous (identity-less) segment. The empty tree has a fixed
// non-empty identity.
func (t *Tree) ContentID() string {
	if len(t.runs) == 0 {
		return "\x00empty"
	}
	id := t.runs[0].seg.id
	for _, r := range t.runs[1:] {
		id = combineSegmentIDs(id, r.seg.id)
		if id == "" {
			return ""
		}
	}
	if id == "" {
		return ""
	}
	return id
}
