package engine_test

import (
	"context"
	"runtime"
	"testing"

	"qkbfly/internal/canon"
	"qkbfly/internal/corpus"
	"qkbfly/internal/densify"
	"qkbfly/internal/engine"
	"qkbfly/internal/graph"
	"qkbfly/internal/kb/store"
	"qkbfly/internal/nlp"
	"qkbfly/internal/nlp/clause"
	"qkbfly/internal/nlp/depparse"
	"qkbfly/internal/stats"
)

type fixture struct {
	world *corpus.World
	pipe  *clause.Pipeline
	stats *stats.Stats
}

var fx *fixture

func getFixture(t *testing.T) *fixture {
	t.Helper()
	if fx == nil {
		w := corpus.NewWorld(corpus.SmallConfig())
		pipe := clause.NewPipeline(w.Repo, depparse.Malt)
		st := stats.Build(corpus.Docs(w.BackgroundCorpus()), w.Repo, pipe)
		fx = &fixture{world: w, pipe: pipe, stats: st}
	}
	return fx
}

func (f *fixture) config() engine.Config {
	return engine.Config{
		Repo:            f.world.Repo,
		Patterns:        f.world.Patterns,
		Stats:           f.stats,
		Pipe:            f.pipe,
		Params:          densify.DefaultParams(),
		ILPMaxNodes:     2_000_000,
		IncludePronouns: true,
		CorefWindow:     -1,
	}
}

func (f *fixture) docs(n int) []*nlp.Document {
	return corpus.Docs(f.world.WikiDataset(n))
}

// serialReference replays the pre-engine per-document loop: one shared KB,
// stage state freshly allocated for every document.
func (f *fixture) serialReference(docs []*nlp.Document) *store.KB {
	kb := store.New()
	for _, doc := range docs {
		clausesBySent := f.pipe.AnnotateDocument(doc)
		b := graph.NewBuilder(f.world.Repo)
		b.IncludePronouns = true
		g := b.Build(doc, clausesBySent)
		scorer := densify.NewScorer(f.stats, f.world.Repo, densify.DefaultParams(), doc)
		res := densify.Densify(g, scorer)
		canon.New(f.world.Patterns, f.world.Repo).Populate(kb, doc, g, res)
	}
	return kb
}

// TestDeterministicAcrossParallelism: the engine at parallelism 1, 4 and
// NumCPU must produce exactly the KB of the old serial path — same fact
// set, entity records and confidences.
func TestDeterministicAcrossParallelism(t *testing.T) {
	f := getFixture(t)
	const nDocs = 12
	want := f.serialReference(f.docs(nDocs)).Fingerprint()
	if want == "" {
		t.Fatal("serial reference produced an empty KB")
	}
	for _, p := range []int{1, 4, runtime.NumCPU()} {
		kb, bs, err := engine.New(f.config(), engine.WithParallelism(p)).
			Run(context.Background(), f.docs(nDocs))
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if got := kb.Fingerprint(); got != want {
			t.Errorf("p=%d: KB differs from serial reference", p)
		}
		if bs.Documents != nDocs {
			t.Errorf("p=%d: Documents = %d, want %d", p, bs.Documents, nDocs)
		}
	}
}

// TestRepeatedRunsIdentical guards against map-iteration or scheduling
// nondeterminism leaking into the merged KB.
func TestRepeatedRunsIdentical(t *testing.T) {
	f := getFixture(t)
	var first string
	for i := 0; i < 3; i++ {
		kb, _, err := engine.New(f.config(), engine.WithParallelism(4)).
			Run(context.Background(), f.docs(8))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = kb.Fingerprint()
		} else if kb.Fingerprint() != first {
			t.Fatalf("run %d differs from run 0", i)
		}
	}
}

// TestStageTimings: the extended BuildStats must attribute time to every
// pipeline stage and report per-document wall times in document order.
func TestStageTimings(t *testing.T) {
	f := getFixture(t)
	const nDocs = 6
	_, bs, err := engine.New(f.config(), engine.WithParallelism(2)).
		Run(context.Background(), f.docs(nDocs))
	if err != nil {
		t.Fatal(err)
	}
	if bs.Parallelism != 2 {
		t.Errorf("Parallelism = %d, want 2", bs.Parallelism)
	}
	if len(bs.PerDocElapsed) != nDocs {
		t.Errorf("PerDocElapsed = %d entries, want %d", len(bs.PerDocElapsed), nDocs)
	}
	if bs.Sentences == 0 || bs.Clauses == 0 {
		t.Errorf("counts not accumulated: %+v", bs)
	}
	st := bs.StageElapsed
	if st.Annotate <= 0 || st.Graph <= 0 || st.Densify <= 0 || st.Canonicalize <= 0 {
		t.Errorf("stage timings not populated: %+v", st)
	}
	if sum := st.Annotate + st.Graph + st.Densify + st.Canonicalize; sum <= 0 {
		t.Errorf("total stage time %v", sum)
	}
}

// TestCancellation: a cancelled context stops the run; no documents are
// claimed and the error is surfaced.
func TestCancellation(t *testing.T) {
	f := getFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	kb, bs, err := engine.New(f.config(), engine.WithParallelism(2)).Run(ctx, f.docs(6))
	if err == nil {
		t.Fatal("expected context error")
	}
	if bs.Documents != 0 || kb.Len() != 0 {
		t.Errorf("cancelled run processed %d docs, %d facts", bs.Documents, kb.Len())
	}
}

// TestCorefWindowOption: the option must reach the graph builder — with a
// zero backward window, pronouns cannot link across sentences, so the
// joint system extracts no more facts than with the paper's window of 5.
func TestCorefWindowOption(t *testing.T) {
	f := getFixture(t)
	const nDocs = 10
	def, _, err := engine.New(f.config(), engine.WithParallelism(2)).
		Run(context.Background(), f.docs(nDocs))
	if err != nil {
		t.Fatal(err)
	}
	zero, _, err := engine.New(f.config(), engine.WithParallelism(2), engine.WithCorefWindow(0)).
		Run(context.Background(), f.docs(nDocs))
	if err != nil {
		t.Fatal(err)
	}
	if zero.Len() > def.Len() {
		t.Errorf("window 0 yielded %d facts > default window's %d", zero.Len(), def.Len())
	}
}

// TestEmptyBatch: zero documents is a valid (empty) build.
func TestEmptyBatch(t *testing.T) {
	f := getFixture(t)
	kb, bs, err := engine.New(f.config()).Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if kb.Len() != 0 || bs.Documents != 0 {
		t.Errorf("empty batch: %d facts, %d docs", kb.Len(), bs.Documents)
	}
}
