package tuning

import (
	"testing"

	"qkbfly/internal/corpus"
	"qkbfly/internal/nlp/clause"
	"qkbfly/internal/nlp/depparse"
	"qkbfly/internal/stats"
)

func TestTuneOnWorld(t *testing.T) {
	w := corpus.NewWorld(corpus.SmallConfig())
	pipe := clause.NewPipeline(w.Repo, depparse.Malt)
	st := stats.Build(corpus.Docs(w.BackgroundCorpus()), w.Repo, pipe)
	ann := AnnotationsFromWorld(w, 200)
	if len(ann) < 20 {
		t.Fatalf("annotations = %d", len(ann))
	}
	res := Tune(ann, st, w.Repo)
	if res.Annotations == 0 {
		t.Fatal("no usable (ambiguous) annotations")
	}
	sum := 0.0
	for i, a := range res.Alpha {
		if a < 0 {
			t.Errorf("alpha[%d] = %f negative", i, a)
		}
		sum += a
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("alphas not normalized: %v", res.Alpha)
	}
	// At least one feature must carry substantial weight; with
	// surname-alias mentions the coherence/type features dominate (the
	// anchor prior spreads its mass by prominence, so L-BFGS may drive
	// α1 toward zero on this annotation design).
	max := 0.0
	for _, a := range res.Alpha {
		if a > max {
			max = a
		}
	}
	if max < 0.3 {
		t.Errorf("no dominant feature: %v", res.Alpha)
	}
}

func TestTuneImprovesLikelihood(t *testing.T) {
	w := corpus.NewWorld(corpus.SmallConfig())
	pipe := clause.NewPipeline(w.Repo, depparse.Malt)
	st := stats.Build(corpus.Docs(w.BackgroundCorpus()), w.Repo, pipe)
	ann := AnnotationsFromWorld(w, 150)
	res := Tune(ann, st, w.Repo)
	if res.Iterations == 0 {
		t.Skip("converged immediately")
	}
	if res.LogLik > 0 {
		t.Errorf("log-likelihood %f positive", res.LogLik)
	}
}

func TestEmptyAnnotations(t *testing.T) {
	w := corpus.NewWorld(corpus.SmallConfig())
	pipe := clause.NewPipeline(w.Repo, depparse.Malt)
	st := stats.Build(corpus.Docs(w.BackgroundCorpus()), w.Repo, pipe)
	res := Tune(nil, st, w.Repo)
	if res.Annotations != 0 {
		t.Errorf("annotations = %d", res.Annotations)
	}
}
