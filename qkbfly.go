// Package qkbfly implements QKBfly, the query-driven on-the-fly knowledge
// base construction system of Nguyen et al. (PVLDB 11(1), 2017).
//
// Given an entity-centric query or a natural-language question, the system
// retrieves relevant documents, builds a semantic graph per document (§3),
// jointly performs named-entity disambiguation and co-reference resolution
// by graph densification (§4), and canonicalizes the result into an
// on-the-fly KB of binary and higher-arity facts (§5).
//
// Basic use:
//
//	world := corpus.NewWorld(corpus.DefaultConfig())   // or your own docs
//	sys := qkbfly.New(qkbfly.Resources{...}, qkbfly.DefaultConfig())
//	kb, _, err := sys.BuildKBContext(ctx, docs, qkbfly.WithParallelism(8))
//	facts := kb.Search(store.Query{Subject: "Type:MUSICAL_ARTIST"})
//
// Document batches are executed by the concurrent staged engine
// (internal/engine): a worker pool runs the four-stage pipeline with
// reusable per-worker state and merges per-document KB shards
// deterministically, so any parallelism level yields the same KB.
package qkbfly

import (
	"context"

	"qkbfly/internal/densify"
	"qkbfly/internal/engine"
	"qkbfly/internal/kb/entityrepo"
	"qkbfly/internal/kb/patterns"
	"qkbfly/internal/kb/store"
	"qkbfly/internal/nlp"
	"qkbfly/internal/nlp/clause"
	"qkbfly/internal/nlp/depparse"
	"qkbfly/internal/search"
	"qkbfly/internal/stats"
)

// Mode selects the inference configuration compared in §7.1.
type Mode int

// The configurations of Table 3.
const (
	// Joint is full QKBfly: fact extraction, NED and CR jointly.
	Joint Mode = iota
	// Pipeline runs three separate stages and omits the type-signature
	// feature (QKBfly-pipeline).
	Pipeline
	// NounOnly performs fact extraction and NED only; no co-reference
	// resolution (QKBfly-noun).
	NounOnly
)

// Algorithm selects greedy densification or the exact ILP (Table 6).
type Algorithm int

// Graph algorithms.
const (
	Greedy Algorithm = iota
	ILP
)

// Config controls a System.
type Config struct {
	Mode      Mode
	Algorithm Algorithm
	// Params are the §4 hyper-parameters.
	Params densify.Params
	// Tau is the confidence threshold for distilling high-quality facts
	// (§4; the paper uses 0.5, and 0.9 for the precision-oriented
	// DeepDive comparison).
	Tau float64
	// ParserMode selects the dependency parser (Malt is the paper's
	// choice; Stanford reproduces the slow baseline of Table 5).
	ParserMode depparse.Mode
	// ILPMaxNodes bounds the branch-and-bound search per document.
	ILPMaxNodes int
	// Parallelism is the default worker-pool size for KB construction;
	// <= 0 means one worker per CPU. Per-call WithParallelism overrides it.
	Parallelism int
}

// DefaultConfig returns the paper's default configuration.
func DefaultConfig() Config {
	return Config{
		Mode:        Joint,
		Algorithm:   Greedy,
		Params:      densify.DefaultParams(),
		Tau:         0.5,
		ParserMode:  depparse.Malt,
		ILPMaxNodes: 2_000_000,
	}
}

// Resources are the background repositories of §2.2: the entity
// repository (E), the pattern repository (P) and the statistics (S)
// precomputed from the background corpus (C).
type Resources struct {
	Repo     *entityrepo.Repo
	Patterns *patterns.Repo
	Stats    *stats.Stats
	// Index retrieves documents for queries; optional (BuildKB does not
	// need it, BuildKBForQuery does).
	Index *search.Index
}

// System is a configured QKBfly instance.
type System struct {
	res  Resources
	cfg  Config
	pipe *clause.Pipeline
}

// New assembles a System.
func New(res Resources, cfg Config) *System {
	var gaz interface {
		LookupType(string) (nlp.NERType, bool)
	}
	if res.Repo != nil {
		gaz = res.Repo
	}
	return &System{
		res:  res,
		cfg:  cfg,
		pipe: clause.NewPipeline(gaz, cfg.ParserMode),
	}
}

// Pipeline exposes the NLP pipeline (used by baselines and experiments).
func (s *System) Pipeline() *clause.Pipeline { return s.pipe }

// BuildStats is the run-time accounting of one build: document, sentence
// and clause counts, per-document wall times, and per-stage timings from
// the execution engine.
type BuildStats = engine.BuildStats

// Option tunes one BuildKBContext call (worker-pool size, co-reference
// window) without reconfiguring the System.
type Option = engine.Option

// WithParallelism sets the worker-pool size for one call (n <= 0 means
// one worker per CPU).
func WithParallelism(n int) Option { return engine.WithParallelism(n) }

// WithCorefWindow overrides the pronoun co-reference window for one call
// (the paper fixes 5 backward sentences; the ablation study varies it).
func WithCorefWindow(w int) Option { return engine.WithCorefWindow(w) }

// BuildKBContext builds the on-the-fly KB over the documents in one
// shot: the staged engine runs the batch and merges the per-document
// shards flat, in document order. The result is deterministic — any
// parallelism level, and any partitioning of the same documents into
// Session ingest increments, produces the same KB (the session's merge
// tree is an associative re-bracketing of the same shard merge).
// Cancelling the context stops the build early; the KB over the
// already-processed document prefix is returned with ctx.Err().
//
// Long-lived callers that feed documents incrementally should hold a
// Session (OpenSession) instead of re-running one-shot builds: a session
// pays O(log W) merge work per increment where a rebuild pays O(W).
// Facts below the configured τ are still stored; use FilterTau or
// store.Query.MinConf to distill.
func (s *System) BuildKBContext(ctx context.Context, docs []*nlp.Document, opts ...Option) (*store.KB, *BuildStats, error) {
	return engine.New(s.engineConfig(), opts...).Run(ctx, docs)
}

// BuildKB is BuildKBContext with a background context — the original
// blocking API, kept as a thin wrapper.
func (s *System) BuildKB(docs []*nlp.Document) (*store.KB, *BuildStats) {
	kb, bs, _ := s.BuildKBContext(context.Background(), docs)
	return kb, bs
}

// BuildKBWithCorefWindow is BuildKB with a custom pronoun co-reference
// window, kept for the ablation study.
//
// Deprecated: pass WithCorefWindow to BuildKBContext (or set it in
// SessionOptions.BuildOptions for incremental ingestion).
func (s *System) BuildKBWithCorefWindow(docs []*nlp.Document, window int) (*store.KB, *BuildStats) {
	kb, bs, _ := s.BuildKBContext(context.Background(), docs, WithCorefWindow(window))
	return kb, bs
}

// engineConfig resolves the System's Mode/Algorithm configuration into
// the engine's plain execution config.
func (s *System) engineConfig() engine.Config {
	params := s.cfg.Params
	if s.cfg.Mode == Pipeline {
		params.PipelineMode = true
		params.UseTypeSignatures = false
	}
	return engine.Config{
		Repo:            s.res.Repo,
		Patterns:        s.res.Patterns,
		Stats:           s.res.Stats,
		Pipe:            s.pipe,
		Params:          params,
		UseILP:          s.cfg.Algorithm == ILP && s.cfg.Mode == Joint,
		ILPMaxNodes:     s.cfg.ILPMaxNodes,
		IncludePronouns: s.cfg.Mode != NounOnly,
		CorefWindow:     -1,
		Parallelism:     s.cfg.Parallelism,
	}
}

// Retrieve returns the documents the index yields for the query — the §6
// retrieval step of the query-driven flow, exposed so the serving layer
// can consult its shard cache before deciding what to build. Documents
// are deep copies (annotation mutates them); a system without an index
// retrieves nothing. source restricts retrieval ("wikipedia", "news" or
// ""); size is the number of documents.
func (s *System) Retrieve(query string, source string, size int) []*nlp.Document {
	if s.res.Index == nil {
		return nil
	}
	hits := s.res.Index.Search(query, size, source)
	docs := make([]*nlp.Document, 0, len(hits))
	for _, h := range hits {
		docs = append(docs, h.Doc.Clone())
	}
	return docs
}

// BuildShardsContext runs the four-stage pipeline but returns one KB
// shard per document instead of the merged KB — the reusable half of
// BuildKBContext. Shards are deterministic per document, so a serving
// layer can cache them and re-merge (engine.MergeShards order) with
// shards of other batches; shards[i] is nil for documents not reached
// before cancellation.
func (s *System) BuildShardsContext(ctx context.Context, docs []*nlp.Document, opts ...Option) ([]*store.KB, *BuildStats, error) {
	return engine.New(s.engineConfig(), opts...).RunShards(ctx, docs)
}

// BuildKBForQueryContext retrieves documents for the query from the index
// and builds the on-the-fly KB from them — the end-to-end query-driven
// flow of §6. source restricts retrieval ("wikipedia", "news" or "");
// size is the number of documents. Empty retrievals (no index, or no
// hits) return a usable empty KB with consistent BuildStats: zeroed stage
// timings and an empty, non-nil PerDocElapsed, with per-call options
// applied the same way as on the non-empty path.
func (s *System) BuildKBForQueryContext(ctx context.Context, query string, source string, size int, opts ...Option) (*store.KB, []*nlp.Document, *BuildStats, error) {
	docs := s.Retrieve(query, source, size)
	kb, bs, err := s.BuildKBContext(ctx, docs, opts...)
	return kb, docs, bs, err
}

// BuildKBForQuery is BuildKBForQueryContext with a background context.
func (s *System) BuildKBForQuery(query string, source string, size int) (*store.KB, []*nlp.Document, *BuildStats) {
	kb, docs, bs, _ := s.BuildKBForQueryContext(context.Background(), query, source, size)
	return kb, docs, bs
}

// FilterTau returns the facts meeting the configured confidence threshold.
func (s *System) FilterTau(kb *store.KB) []store.Fact {
	return kb.Search(store.Query{MinConf: s.cfg.Tau})
}
