package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"
)

// defaultStreamWriteTimeout bounds a single NDJSON record write when
// HandlerOptions.StreamWriteTimeout is unset.
const defaultStreamWriteTimeout = 15 * time.Second

// streamWriter writes NDJSON records with a per-record write deadline
// and a flush after every record. Every streaming endpoint (/facts,
// /query, /deltas) goes through one, so a single stalled consumer — a
// follower that stopped reading but kept the connection open — hits the
// deadline and is disconnected instead of pinning the handler (and a
// draining server) indefinitely. The deadline applies per write, not
// per stream: a healthy slow reader that keeps draining never trips it.
type streamWriter struct {
	rc      *http.ResponseController
	enc     *json.Encoder
	timeout time.Duration
}

// newStreamWriter prepares a writer over w. Transports that cannot set
// write deadlines (test recorders) degrade to plain flushed writes.
func newStreamWriter(w http.ResponseWriter, timeout time.Duration) *streamWriter {
	if timeout <= 0 {
		timeout = defaultStreamWriteTimeout
	}
	return &streamWriter{
		rc:      http.NewResponseController(w),
		enc:     json.NewEncoder(w),
		timeout: timeout,
	}
}

// encode writes one record and flushes it to the peer. A deadline
// overrun surfaces as a write error; the handler treats it exactly like
// a vanished client and ends the stream.
func (sw *streamWriter) encode(v any) error {
	if err := sw.rc.SetWriteDeadline(time.Now().Add(sw.timeout)); err != nil &&
		!errors.Is(err, http.ErrNotSupported) {
		return err
	}
	if err := sw.enc.Encode(v); err != nil {
		return err
	}
	if err := sw.rc.Flush(); err != nil && !errors.Is(err, http.ErrNotSupported) {
		return err
	}
	return nil
}
