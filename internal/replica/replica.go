package replica

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"qkbfly/internal/kb/store"
	"qkbfly/internal/stats"
)

// Counter names a Follower accounts under (exported so the serving
// layer folds them into /stats alongside its own).
const (
	CounterRecords       = "replica_records"       // stream records decoded
	CounterApplies       = "replica_applies"       // deltas applied to a base KB
	CounterVerifications = "replica_verifications" // fingerprint stamps checked
	CounterVerified      = "replica_verified"      // stamps that matched (versions published)
	CounterDuplicates    = "replica_duplicates"    // records at or below the verified version, skipped
	CounterGaps          = "replica_gaps"          // out-of-order records forcing reconnect-with-resume
	CounterTruncations   = "replica_truncations"   // streams cut mid-record
	CounterReconnects    = "replica_reconnects"    // stream (re)connect attempts
	CounterRetries       = "replica_retries"       // failed connects that backed off
	CounterQuarantines   = "replica_quarantines"   // divergent versions quarantined
	CounterResyncs       = "replica_resyncs"       // reconnects that demanded a full snapshot
	CounterResets        = "replica_resets"        // reset records applied (re-baselines)
)

// DialFunc opens one replication stream. The default dials HTTP; tests
// substitute fault-injecting transports.
type DialFunc func(ctx context.Context, rawURL string) (io.ReadCloser, error)

// Options configure a Follower.
type Options struct {
	// Leader is the leader's base URL, e.g. "http://10.0.0.1:8080".
	Leader string
	// Since resumes the stream after this version (a bootstrap sets it
	// to the restored version). Zero starts from the beginning — the
	// leader re-baselines with a reset record if that predates its
	// retained history.
	Since uint64
	// Client performs HTTP requests when Dial is nil. Defaults to a
	// client with no overall timeout (the stream is long-lived; per-record
	// liveness is ReadTimeout's job).
	Client *http.Client
	// Dial overrides the transport entirely (fault injection in tests).
	Dial DialFunc
	// BackoffBase/BackoffMax bound the jittered exponential reconnect
	// backoff. Defaults 100ms / 5s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// ReadTimeout is the per-record liveness watchdog: if no record
	// arrives for this long the stream is torn down and redialed.
	// Default 45s (leaders heartbeat by closing idle streams at drain;
	// an idle leader simply has nothing to send). Zero uses the default.
	ReadTimeout time.Duration
	// RetryBudget is the number of consecutive failed connect attempts
	// after which the follower reports itself degraded in Status (it
	// keeps serving reads at the last verified version and keeps
	// retrying at BackoffMax). Zero means never degrade.
	RetryBudget int
	// Logf receives connection, quarantine, and resync events.
	// Default log.Printf.
	Logf func(format string, args ...any)
	// Counters receives replication accounting. A fresh set is created
	// when nil (Counters() returns it either way).
	Counters *stats.CounterSet
	// OnVerified is invoked after every fingerprint-verified publish —
	// the history-checker hook (see HistoryChecker.RecordReplica).
	OnVerified func(version uint64, fingerprintSHA string)
}

// Quarantine is one divergent version the follower refused to serve:
// the delta applied cleanly but the resulting KB's fingerprint did not
// match the leader's stamp.
type Quarantine struct {
	Version   uint64 `json:"version"`
	LeaderSHA string `json:"leader_sha256"`
	LocalSHA  string `json:"local_sha256"`
	Added     int    `json:"added"`
	Upgraded  int    `json:"upgraded"`
	Removed   int    `json:"removed"`
	UnixMS    int64  `json:"unix_ms"`
}

// Status is the follower's health summary, surfaced through /healthz
// and /stats on a following qkbflyd.
type Status struct {
	Role               string           `json:"role"`
	Leader             string           `json:"leader"`
	Version            uint64           `json:"version"`
	FingerprintSHA     string           `json:"fingerprint_sha256"`
	LeaderHead         uint64           `json:"leader_head"`
	LagVersions        uint64           `json:"lag_versions"`
	LastVerifiedUnixMS int64            `json:"last_verified_unix_ms"`
	LagMS              int64            `json:"lag_ms"`
	Degraded           bool             `json:"degraded"`
	Quarantined        []Quarantine     `json:"quarantined,omitempty"`
	Counters           map[string]int64 `json:"counters"`
}

// maxQuarantineKept bounds the quarantine log in Status.
const maxQuarantineKept = 8

// Follower replicates a leader's version chain. Reads (KB, Status) are
// safe at any time and always observe the last fingerprint-verified
// version — never a partially applied or divergent one.
type Follower struct {
	opt      Options
	counters *stats.CounterSet

	mu           sync.Mutex
	kb           *store.KB
	version      uint64
	fpSHA        string
	leaderHead   uint64
	lastVerified time.Time
	degraded     bool
	quarantined  []Quarantine
}

// New returns a Follower that will replicate from opt.Leader once Run
// is called. It starts empty at version opt.Since; Seed installs a
// bootstrapped base first.
func New(opt Options) *Follower {
	if opt.BackoffBase <= 0 {
		opt.BackoffBase = 100 * time.Millisecond
	}
	if opt.BackoffMax <= 0 {
		opt.BackoffMax = 5 * time.Second
	}
	if opt.ReadTimeout <= 0 {
		opt.ReadTimeout = 45 * time.Second
	}
	if opt.Logf == nil {
		opt.Logf = log.Printf
	}
	if opt.Client == nil {
		opt.Client = &http.Client{}
	}
	c := opt.Counters
	if c == nil {
		c = stats.NewCounterSet()
	}
	f := &Follower{
		opt:      opt,
		counters: c,
		kb:       store.New(),
		version:  opt.Since,
	}
	return f
}

// Seed installs a verified base state — typically the result of
// Bootstrap from a persist blob store — so the stream resumes from
// version instead of replaying or re-baselining. Call before Run.
func (f *Follower) Seed(kb *store.KB, version uint64, fingerprintSHA string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.kb = kb
	f.version = version
	f.fpSHA = fingerprintSHA
	if version > f.leaderHead {
		f.leaderHead = version
	}
	f.lastVerified = time.Now()
}

// KB returns the last fingerprint-verified KB and its version.
func (f *Follower) KB() (*store.KB, uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.kb, f.version
}

// Counters returns the follower's counter set (shared with Options
// .Counters when one was supplied).
func (f *Follower) Counters() *stats.CounterSet { return f.counters }

// Status reports role, versions, lag, and quarantine state.
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := Status{
		Role:           "follower",
		Leader:         f.opt.Leader,
		Version:        f.version,
		FingerprintSHA: f.fpSHA,
		LeaderHead:     f.leaderHead,
		Degraded:       f.degraded,
		Counters:       f.counters.Snapshot(),
	}
	if f.leaderHead > f.version {
		st.LagVersions = f.leaderHead - f.version
	}
	if !f.lastVerified.IsZero() {
		st.LastVerifiedUnixMS = f.lastVerified.UnixMilli()
		st.LagMS = time.Since(f.lastVerified).Milliseconds()
	}
	st.Quarantined = append(st.Quarantined, f.quarantined...)
	return st
}

// Run replicates until ctx is cancelled. It never returns early: every
// stream failure reconnects with jittered exponential backoff, resuming
// from the last verified version (or demanding a full snapshot after a
// quarantine). The error is always ctx.Err().
func (f *Follower) Run(ctx context.Context) error {
	resync := false
	failures := 0
	for ctx.Err() == nil {
		f.counters.Add(CounterReconnects, 1)
		if resync {
			f.counters.Add(CounterResyncs, 1)
		}
		rc, err := f.dial(ctx, f.sinceVersion(), resync)
		if err == nil {
			failures = 0
			// consume reports whether its last failure demands a full
			// snapshot. Dropping the demand after an interrupted resync is
			// safe: replaying the divergent delta just quarantines again
			// and re-demands.
			resync, err = f.consume(ctx, rc)
			if err != nil && ctx.Err() == nil {
				f.opt.Logf("replica: stream from %s failed at v%d: %v", f.opt.Leader, f.sinceVersion(), err)
			}
		} else if ctx.Err() == nil {
			failures++
			f.counters.Add(CounterRetries, 1)
			if f.opt.RetryBudget > 0 && failures >= f.opt.RetryBudget {
				f.setDegraded(true)
			}
			f.opt.Logf("replica: connect to %s failed (attempt %d): %v", f.opt.Leader, failures, err)
		}
		f.sleepBackoff(ctx, failures)
	}
	return ctx.Err()
}

// sinceVersion is the resume point: the last verified version.
func (f *Follower) sinceVersion() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.version
}

func (f *Follower) setDegraded(v bool) {
	f.mu.Lock()
	f.degraded = v
	f.mu.Unlock()
}

// dial opens the stream at since, optionally demanding a full snapshot.
func (f *Follower) dial(ctx context.Context, since uint64, snapshot bool) (io.ReadCloser, error) {
	q := url.Values{}
	q.Set("since", strconv.FormatUint(since, 10))
	q.Set("follow", "1")
	if snapshot {
		q.Set("snapshot", "1")
	}
	rawURL := f.opt.Leader + "/deltas?" + q.Encode()
	if f.opt.Dial != nil {
		return f.opt.Dial(ctx, rawURL)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rawURL, nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.opt.Client.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("leader %s: %s", f.opt.Leader, resp.Status)
	}
	return resp.Body, nil
}

// errTruncated marks a stream cut mid-record.
var errTruncated = errors.New("stream truncated mid-record")

// consume drains one stream, applying and verifying each record. It
// returns resync=true when a fingerprint mismatch demands the next dial
// fetch a full snapshot. A nil error means the leader closed the stream
// cleanly (drain, or this subscriber lagged and was dropped) — the
// caller reconnects either way.
func (f *Follower) consume(ctx context.Context, rc io.ReadCloser) (resync bool, err error) {
	defer rc.Close()
	// Per-record liveness: a stream that goes silent longer than
	// ReadTimeout is closed under the reader, failing the pending read.
	watchdog := time.AfterFunc(f.opt.ReadTimeout, func() { rc.Close() })
	defer watchdog.Stop()
	stop := context.AfterFunc(ctx, func() { rc.Close() })
	defer stop()

	br := bufio.NewReader(rc)
	for {
		line, rerr := br.ReadBytes('\n')
		watchdog.Reset(f.opt.ReadTimeout)
		if rerr != nil {
			if rerr == io.EOF && len(line) == 0 {
				return false, nil // clean end of stream
			}
			if len(line) > 0 {
				f.counters.Add(CounterTruncations, 1)
				return false, errTruncated
			}
			return false, rerr
		}
		if len(line) <= 1 {
			continue // keepalive blank line
		}
		var rec Record
		if derr := json.Unmarshal(line, &rec); derr != nil {
			f.counters.Add(CounterTruncations, 1)
			return false, fmt.Errorf("undecodable record: %w", derr)
		}
		f.counters.Add(CounterRecords, 1)
		f.noteLeaderHead(rec.Version)
		if demand, aerr := f.applyRecord(&rec); aerr != nil {
			return demand, aerr
		}
	}
}

// noteLeaderHead advances the observed leader head (lag accounting).
func (f *Follower) noteLeaderHead(v uint64) {
	f.mu.Lock()
	if v > f.leaderHead {
		f.leaderHead = v
	}
	f.mu.Unlock()
}

// applyRecord applies one stream record against the last verified
// state. resync=true (with an error) demands a snapshot on reconnect.
func (f *Follower) applyRecord(rec *Record) (resync bool, err error) {
	if rec.Delta == nil {
		return false, fmt.Errorf("record v%d carries no delta", rec.Version)
	}
	base, baseVer := f.KB()
	if rec.Reset {
		// Re-baseline: the delta is the full diff from empty, valid
		// regardless of local state — this is how a quarantined or
		// horizon-lapsed follower recovers.
		if rec.Version <= baseVer {
			// At or below the verified version: local state at baseVer is
			// already fingerprint-verified, so an equal-version snapshot is
			// content-identical — re-publishing it would duplicate the
			// observation in the replica's version history.
			f.counters.Add(CounterDuplicates, 1)
			return false, nil
		}
		next := rec.Delta.Apply(store.New())
		f.counters.Add(CounterApplies, 1)
		sha := FingerprintSHA(next)
		f.counters.Add(CounterVerifications, 1)
		if sha != rec.FingerprintSHA {
			// A divergent snapshot means the wire is corrupting records;
			// quarantine and retry the snapshot.
			f.quarantine(rec, sha)
			return true, fmt.Errorf("snapshot v%d fingerprint mismatch", rec.Version)
		}
		f.counters.Add(CounterResets, 1)
		f.publish(next, rec.Version, sha)
		return false, nil
	}
	if rec.Version <= baseVer {
		f.counters.Add(CounterDuplicates, 1)
		return false, nil
	}
	if rec.Version != baseVer+1 {
		// Out-of-order delivery: a delta only composes onto exactly the
		// version it was diffed against. Resume from the verified version.
		f.counters.Add(CounterGaps, 1)
		return false, fmt.Errorf("gap: got v%d, have v%d", rec.Version, baseVer)
	}
	next := rec.Delta.Apply(base)
	f.counters.Add(CounterApplies, 1)
	sha := FingerprintSHA(next)
	f.counters.Add(CounterVerifications, 1)
	if sha != rec.FingerprintSHA {
		f.quarantine(rec, sha)
		return true, fmt.Errorf("v%d fingerprint mismatch after apply", rec.Version)
	}
	f.publish(next, rec.Version, sha)
	return false, nil
}

// publish installs a fingerprint-verified version as the served state.
func (f *Follower) publish(kb *store.KB, version uint64, sha string) {
	f.mu.Lock()
	f.kb = kb
	f.version = version
	f.fpSHA = sha
	f.lastVerified = time.Now()
	f.degraded = false
	if version > f.leaderHead {
		f.leaderHead = version
	}
	f.mu.Unlock()
	f.counters.Add(CounterVerified, 1)
	if f.opt.OnVerified != nil {
		f.opt.OnVerified(version, sha)
	}
}

// quarantine records a divergent version — applied but never served —
// and logs the diff summary for the operator.
func (f *Follower) quarantine(rec *Record, localSHA string) {
	q := Quarantine{
		Version:   rec.Version,
		LeaderSHA: rec.FingerprintSHA,
		LocalSHA:  localSHA,
		Added:     len(rec.Delta.Added),
		Upgraded:  len(rec.Delta.Upgraded),
		Removed:   len(rec.Delta.Removed),
		UnixMS:    time.Now().UnixMilli(),
	}
	f.mu.Lock()
	f.quarantined = append(f.quarantined, q)
	if len(f.quarantined) > maxQuarantineKept {
		f.quarantined = f.quarantined[len(f.quarantined)-maxQuarantineKept:]
	}
	f.mu.Unlock()
	f.counters.Add(CounterQuarantines, 1)
	f.opt.Logf("replica: QUARANTINE v%d from %s: leader sha %.12s… vs local %.12s… (delta +%d ~%d -%d facts, +%d ~%d -%d entities); resyncing from snapshot",
		rec.Version, f.opt.Leader, rec.FingerprintSHA, localSHA,
		q.Added, q.Upgraded, q.Removed,
		len(rec.Delta.AddedEntities), len(rec.Delta.ChangedEntities), len(rec.Delta.RemovedEntities))
}

// sleepBackoff waits the jittered exponential backoff for the given
// consecutive-failure count (0 → base delay: even a cleanly closed
// stream should not hot-loop reconnects).
func (f *Follower) sleepBackoff(ctx context.Context, failures int) {
	d := f.opt.BackoffBase
	for i := 0; i < failures && d < f.opt.BackoffMax; i++ {
		d *= 2
	}
	if d > f.opt.BackoffMax {
		d = f.opt.BackoffMax
	}
	// Full jitter on the upper half keeps a restarted fleet from
	// thundering back in lockstep.
	d = d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
