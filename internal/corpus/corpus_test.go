package corpus

import (
	"strings"
	"testing"

	"qkbfly/internal/kb/entityrepo"
)

func smallWorld(t *testing.T) *World {
	t.Helper()
	return NewWorld(SmallConfig())
}

func TestWorldDeterminism(t *testing.T) {
	a := NewWorld(SmallConfig())
	b := NewWorld(SmallConfig())
	if len(a.Order) != len(b.Order) || len(a.Facts) != len(b.Facts) {
		t.Fatalf("worlds differ: %d/%d entities, %d/%d facts",
			len(a.Order), len(b.Order), len(a.Facts), len(b.Facts))
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatalf("entity order differs at %d: %s vs %s", i, a.Order[i], b.Order[i])
		}
	}
	da := a.Article(a.Order[len(a.Order)-1], true)
	db := b.Article(b.Order[len(b.Order)-1], true)
	if da.Doc.Text != db.Doc.Text {
		t.Error("article realization not deterministic")
	}
}

func TestArticleRegenerationIdentical(t *testing.T) {
	w := smallWorld(t)
	id := w.EntitiesOfType(entityrepo.TypeActor)[0]
	d1 := w.Article(id, true)
	d2 := w.Article(id, true)
	if d1.Doc.Text != d2.Doc.Text {
		t.Error("regenerating the same article changed its text")
	}
	if len(d1.Doc.Anchors) != len(d2.Doc.Anchors) {
		t.Error("anchor counts differ between regenerations")
	}
}

func TestFactsReferenceExistingEntities(t *testing.T) {
	w := smallWorld(t)
	for _, f := range w.Facts {
		if w.Entity(f.Subject) == nil {
			t.Fatalf("fact %d subject %q unknown", f.ID, f.Subject)
		}
		for _, o := range f.Objects {
			if o.IsEntity() && w.Entity(o.EntityID) == nil {
				t.Fatalf("fact %d object %q unknown", f.ID, o.EntityID)
			}
		}
	}
}

func TestRepoExcludesEmerging(t *testing.T) {
	w := smallWorld(t)
	emerging := 0
	for _, id := range w.Order {
		e := w.Entity(id)
		if e.Emerging {
			emerging++
			if w.Repo.Get(id) != nil {
				t.Errorf("emerging entity %s in repository", id)
			}
		} else if w.Repo.Get(id) == nil {
			t.Errorf("non-emerging entity %s missing from repository", id)
		}
	}
	if emerging == 0 {
		t.Error("world has no emerging entities")
	}
}

func TestAnchorsAlign(t *testing.T) {
	w := smallWorld(t)
	docs := w.BackgroundCorpus()
	total := 0
	for _, gd := range docs {
		for _, a := range gd.Doc.Anchors {
			total++
			sent := &gd.Doc.Sentences[a.SentIndex]
			if a.Start < 0 || a.End > len(sent.Tokens) || a.Start >= a.End {
				t.Fatalf("doc %s: bad anchor span [%d,%d)", gd.Doc.ID, a.Start, a.End)
			}
			if w.Entity(a.EntityID) == nil {
				t.Fatalf("anchor to unknown entity %s", a.EntityID)
			}
		}
	}
	if total == 0 {
		t.Fatal("no anchors in the background corpus")
	}
}

func TestGoldAlignment(t *testing.T) {
	w := smallWorld(t)
	id := w.EntitiesOfType(entityrepo.TypeActor)[0]
	gd := w.Article(id, false)
	if len(gd.FactIDs) == 0 {
		t.Fatal("article expresses no facts")
	}
	if len(gd.SentFacts) > len(gd.Doc.Sentences) {
		t.Errorf("SentFacts (%d) longer than sentences (%d)", len(gd.SentFacts), len(gd.Doc.Sentences))
	}
	for _, fs := range gd.SentFacts {
		for _, fid := range fs {
			if fid < 0 || fid >= len(w.Facts) {
				t.Fatalf("gold fact ID %d out of range", fid)
			}
		}
	}
}

func TestWikiaEmergingRate(t *testing.T) {
	w := smallWorld(t)
	docs := w.WikiaDataset(w.Config.WikiaPages)
	if len(docs) == 0 {
		t.Fatal("no wikia pages")
	}
	// Characters referenced by episode facts should be mostly emerging.
	emerging, total := 0, 0
	for _, ep := range w.Episodes {
		for _, fid := range ep.FactIDs {
			subj := w.Entity(w.Facts[fid].Subject)
			total++
			if subj.Emerging {
				emerging++
			}
		}
	}
	if total == 0 || float64(emerging)/float64(total) < 0.5 {
		t.Errorf("wikia emerging rate = %d/%d, want > 0.5", emerging, total)
	}
}

func TestNewsArticlesCoverEventFacts(t *testing.T) {
	w := smallWorld(t)
	for i := range w.Events {
		ev := &w.Events[i]
		gd := w.NewsArticle(ev, 0)
		covered := map[int]bool{}
		for _, fid := range gd.FactIDs {
			covered[fid] = true
		}
		for _, fid := range ev.FactIDs {
			if !covered[fid] {
				t.Errorf("event %d (%s): fact %d not realized", ev.ID, ev.Kind, fid)
			}
		}
		if gd.Doc.Source != "news" {
			t.Errorf("news source = %q", gd.Doc.Source)
		}
	}
}

func TestQABenchmark(t *testing.T) {
	w := smallWorld(t)
	qs := w.QABenchmark()
	if len(qs) == 0 {
		t.Fatal("empty QA benchmark")
	}
	for _, q := range qs {
		if q.Text == "" || len(q.Gold) == 0 {
			t.Errorf("bad question %+v", q)
		}
		if !strings.HasSuffix(q.Text, "?") {
			t.Errorf("question without question mark: %q", q.Text)
		}
	}
}

func TestLiveArticleIncludesEventFacts(t *testing.T) {
	w := smallWorld(t)
	// Find an event participant.
	var pid string
	for _, ev := range w.Events {
		if len(ev.FactIDs) > 0 {
			pid = w.Facts[ev.FactIDs[0]].Subject
			break
		}
	}
	if pid == "" {
		t.Skip("no events")
	}
	static := w.Article(pid, false)
	live := w.LiveArticle(pid)
	hasEvent := func(gd *GenDoc) bool {
		for _, fid := range gd.FactIDs {
			if w.Facts[fid].EventID >= 0 {
				return true
			}
		}
		return false
	}
	if hasEvent(static) {
		t.Error("background article leaks event facts")
	}
	if !hasEvent(live) {
		t.Error("live article missing event facts")
	}
}

func TestProfessionAndTypeNouns(t *testing.T) {
	w := smallWorld(t)
	for _, id := range w.Order {
		e := w.Entity(id)
		if entityrepo.Subsumes(entityrepo.TypePerson, e.Type) {
			if ProfessionNoun(e) == "" {
				t.Errorf("no profession noun for %s (%s)", id, e.Type)
			}
		} else if TypeNoun(e.Type) == "" {
			t.Errorf("no type noun for %s (%s)", id, e.Type)
		}
	}
}

func TestEventsHaveQueries(t *testing.T) {
	w := smallWorld(t)
	for _, ev := range w.Events {
		if len(ev.Queries) == 0 {
			t.Errorf("event %d (%s) has no queries", ev.ID, ev.Kind)
		}
		if len(ev.FactIDs) == 0 {
			t.Errorf("event %d (%s) has no facts", ev.ID, ev.Kind)
		}
	}
}
