package qkbfly_test

import (
	"context"
	"testing"

	"qkbfly"
	"qkbfly/internal/corpus"
	"qkbfly/internal/engine"
)

// TestBuildKBContextMatchesWrappers: the back-compat wrappers are thin
// adapters over BuildKBContext — all paths must produce identical KBs,
// at any parallelism.
func TestBuildKBContextMatchesWrappers(t *testing.T) {
	f := getFixture(t)
	sys := qkbfly.New(f.res, qkbfly.DefaultConfig())
	const nDocs = 8
	ctx := context.Background()

	wrapKB, _ := sys.BuildKB(corpus.Docs(f.world.WikiDataset(nDocs)))
	want := wrapKB.Fingerprint()

	for _, p := range []int{1, 3} {
		kb, bs, err := sys.BuildKBContext(ctx, corpus.Docs(f.world.WikiDataset(nDocs)),
			qkbfly.WithParallelism(p))
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if kb.Fingerprint() != want {
			t.Errorf("BuildKBContext(p=%d) differs from BuildKB", p)
		}
		if bs.Parallelism != p {
			t.Errorf("p=%d: stats report parallelism %d", p, bs.Parallelism)
		}
	}

	winKB, _, err := sys.BuildKBContext(ctx, corpus.Docs(f.world.WikiDataset(nDocs)),
		qkbfly.WithCorefWindow(2))
	if err != nil {
		t.Fatal(err)
	}
	optKB, _, err := sys.BuildKBContext(ctx, corpus.Docs(f.world.WikiDataset(nDocs)),
		qkbfly.WithCorefWindow(2), qkbfly.WithParallelism(3))
	if err != nil {
		t.Fatal(err)
	}
	if winKB.Fingerprint() != optKB.Fingerprint() {
		t.Error("WithCorefWindow result depends on parallelism")
	}
}

// TestDeprecatedCorefWindowWrapperIsShim: BuildKBWithCorefWindow has no
// internal callers left — examples and experiments pass WithCorefWindow —
// and survives purely as a compatibility shim, so it must stay
// byte-equivalent to the option it wraps.
func TestDeprecatedCorefWindowWrapperIsShim(t *testing.T) {
	f := getFixture(t)
	sys := qkbfly.New(f.res, qkbfly.DefaultConfig())
	const nDocs = 3

	wrapKB, _ := sys.BuildKBWithCorefWindow(corpus.Docs(f.world.WikiDataset(nDocs)), 2)
	optKB, _, err := sys.BuildKBContext(context.Background(),
		corpus.Docs(f.world.WikiDataset(nDocs)), qkbfly.WithCorefWindow(2))
	if err != nil {
		t.Fatal(err)
	}
	if wrapKB.Fingerprint() != optKB.Fingerprint() {
		t.Error("deprecated BuildKBWithCorefWindow shim differs from WithCorefWindow option")
	}
}

// TestBuildKBForQueryContextEmptyRetrieval: an empty retrieval (no index
// hits, or no index at all) must return a usable empty KB with consistent
// BuildStats — zeroed stage timings and an empty, non-nil PerDocElapsed —
// and per-call options (the coref window) must be accepted exactly like
// on the non-empty path. Regression test: the empty path used to bypass
// parts of the engine setup and hand back nil accounting.
func TestBuildKBForQueryContextEmptyRetrieval(t *testing.T) {
	f := getFixture(t)
	ctx := context.Background()
	systems := map[string]*qkbfly.System{
		"with-index": qkbfly.New(f.res, qkbfly.DefaultConfig()),
		"no-index": qkbfly.New(qkbfly.Resources{
			Repo: f.res.Repo, Patterns: f.res.Patterns, Stats: f.res.Stats,
		}, qkbfly.DefaultConfig()),
	}
	optVariants := map[string][]qkbfly.Option{
		"no-options":   nil,
		"coref-window": {qkbfly.WithCorefWindow(2), qkbfly.WithParallelism(3)},
	}
	for sysName, sys := range systems {
		for optName, opts := range optVariants {
			name := sysName + "/" + optName
			// A query whose terms appear in no indexed document.
			kb, docs, bs, err := sys.BuildKBForQueryContext(ctx, "zzxqv wqzzk", "news", 3, opts...)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(docs) != 0 {
				t.Errorf("%s: retrieved %d docs, want 0", name, len(docs))
			}
			if kb == nil || kb.Len() != 0 {
				t.Errorf("%s: kb = %v, want empty non-nil KB", name, kb)
			}
			if bs == nil {
				t.Fatalf("%s: nil BuildStats", name)
			}
			if bs.PerDocElapsed == nil || len(bs.PerDocElapsed) != 0 {
				t.Errorf("%s: PerDocElapsed = %v, want empty non-nil slice", name, bs.PerDocElapsed)
			}
			if bs.StageElapsed != (engine.StageTimings{}) {
				t.Errorf("%s: stage timings = %+v, want zeroed", name, bs.StageElapsed)
			}
			if bs.Documents != 0 || bs.Sentences != 0 || bs.Clauses != 0 {
				t.Errorf("%s: counts = %+v, want zeroed", name, bs)
			}
			if bs.Parallelism != 1 {
				t.Errorf("%s: Parallelism = %d, want 1 (no work to parallelize)", name, bs.Parallelism)
			}
		}
	}
}

// TestBuildKBForQueryContextCancel: a pre-cancelled context surfaces the
// error and returns an empty (but usable) KB.
func TestBuildKBForQueryContextCancel(t *testing.T) {
	f := getFixture(t)
	sys := qkbfly.New(f.res, qkbfly.DefaultConfig())
	id := f.world.EntitiesOfType("ACTOR")[0]
	name := f.world.Entity(id).Name

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	kb, _, _, err := sys.BuildKBForQueryContext(ctx, name, "wikipedia", 1)
	if err == nil {
		t.Fatal("expected context error")
	}
	if kb == nil || kb.Len() != 0 {
		t.Errorf("cancelled query build returned %v", kb)
	}
}
