package densify

import (
	"testing"

	"qkbfly/internal/corpus"
	"qkbfly/internal/graph"
	"qkbfly/internal/nlp"
	"qkbfly/internal/nlp/clause"
	"qkbfly/internal/nlp/depparse"
	"qkbfly/internal/stats"
)

type fixture struct {
	world *corpus.World
	stats *stats.Stats
	pipe  *clause.Pipeline
}

var fx *fixture

func getFixture(t *testing.T) *fixture {
	t.Helper()
	if fx == nil {
		w := corpus.NewWorld(corpus.SmallConfig())
		pipe := clause.NewPipeline(w.Repo, depparse.Malt)
		st := stats.Build(corpus.Docs(w.BackgroundCorpus()), w.Repo, pipe)
		fx = &fixture{world: w, stats: st, pipe: pipe}
	}
	return fx
}

func (f *fixture) densify(t *testing.T, text string, params Params) (*graph.Graph, *Result, *nlp.Document) {
	t.Helper()
	doc := &nlp.Document{ID: "test", Text: text}
	cls := f.pipe.AnnotateDocument(doc)
	g := graph.NewBuilder(f.world.Repo).Build(doc, cls)
	scorer := NewScorer(f.stats, f.world.Repo, params, doc)
	res := Densify(g, scorer)
	return g, res, doc
}

func TestConstraintsSatisfied(t *testing.T) {
	f := getFixture(t)
	// Build an article text with plenty of mentions.
	id := f.world.EntitiesOfType("ACTOR")[0]
	gd := f.world.Article(id, false)
	_, res, _ := f.densify(t, gd.Doc.Text, DefaultParams())
	// Constraint (1): at most one assignment per NP (map semantics give
	// this); confidence bounds.
	for np, conf := range res.Confidence {
		if conf <= 0 || conf > 1.0001 {
			t.Errorf("confidence of node %d = %f", np, conf)
		}
	}
	// Constraint (2): antecedent map has one entry per pronoun.
	for p, ant := range res.Antecedent {
		if ant < 0 {
			t.Errorf("pronoun %d has negative antecedent", p)
		}
	}
}

func TestDocSubjectResolved(t *testing.T) {
	f := getFixture(t)
	id := f.world.EntitiesOfType("ACTOR")[0]
	gd := f.world.Article(id, false)
	g, res, _ := f.densify(t, gd.Doc.Text, DefaultParams())
	// The article's subject full-name mention must resolve to the entity.
	found := false
	for np, ent := range res.Assignment {
		if g.Nodes[np].Text == f.world.Entity(id).Name && ent == id {
			found = true
		}
	}
	if !found {
		t.Errorf("article subject %s not resolved to itself", id)
	}
}

func TestPronounResolvesToSubject(t *testing.T) {
	f := getFixture(t)
	id := f.world.EntitiesOfType("ACTOR")[0]
	name := f.world.Entity(id).Name
	text := name + " is an actor. He won a major award."
	g, res, _ := f.densify(t, text, DefaultParams())
	if len(res.Antecedent) != 1 {
		t.Fatalf("antecedents = %v", res.Antecedent)
	}
	for _, ant := range res.Antecedent {
		if g.Nodes[ant].Text != name {
			t.Errorf("pronoun resolved to %q", g.Nodes[ant].Text)
		}
	}
}

func TestGenderConstraint(t *testing.T) {
	f := getFixture(t)
	// Find a female person; "He" must not resolve to her.
	var name string
	for _, pid := range f.world.EntitiesOfType("PERSON") {
		e := f.world.Entity(pid)
		if e.Gender == nlp.GenderFemale && !e.Emerging {
			name = e.Name
			break
		}
	}
	text := name + " is famous. He won a major award."
	g, res, _ := f.densify(t, text, DefaultParams())
	for _, ant := range res.Antecedent {
		if g.Nodes[ant].Text == name {
			t.Errorf("male pronoun resolved to female entity %q", name)
		}
	}
}

func TestSurnameDisambiguatedByCluster(t *testing.T) {
	f := getFixture(t)
	id := f.world.EntitiesOfType("ACTOR")[0]
	e := f.world.Entity(id)
	last := e.Aliases[0] // surname alias
	text := e.Name + " is an actor. " + last + " won a major award."
	g, res, _ := f.densify(t, text, DefaultParams())
	for np, ent := range res.Assignment {
		if g.Nodes[np].Text == last && ent != id {
			t.Errorf("surname %q resolved to %s, want %s", last, ent, id)
		}
	}
}

func TestTextConflictSplitsChains(t *testing.T) {
	f := getFixture(t)
	id := f.world.EntitiesOfType("ACTOR")[0]
	e := f.world.Entity(id)
	last := e.Aliases[0]
	other := "Zephram " + last // unknown full name sharing the surname
	text := e.Name + " is an actor. " + last + " met " + other + " yesterday."
	g, res, _ := f.densify(t, text, DefaultParams())
	for np, ent := range res.Assignment {
		if g.Nodes[np].Text == other && ent == id {
			t.Errorf("incompatible name %q merged into %s", other, id)
		}
	}
	_ = res
}

func TestPipelineMode(t *testing.T) {
	f := getFixture(t)
	id := f.world.EntitiesOfType("ACTOR")[0]
	gd := f.world.Article(id, false)
	params := DefaultParams()
	params.PipelineMode = true
	params.UseTypeSignatures = false
	_, res, _ := f.densify(t, gd.Doc.Text, params)
	if len(res.Assignment) == 0 {
		t.Error("pipeline mode produced no assignments")
	}
}

func TestObjectiveNonNegative(t *testing.T) {
	f := getFixture(t)
	id := f.world.EntitiesOfType("PERSON")[0]
	gd := f.world.Article(id, false)
	_, res, _ := f.densify(t, gd.Doc.Text, DefaultParams())
	if res.Objective < 0 {
		t.Errorf("objective = %f", res.Objective)
	}
}

func TestTextConflictHelper(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{"Gwendolyn Ashcombe", "Adrien Ashcombe", true},
		{"Brad Pitt", "Pitt", false},
		{"Pitt", "Pitt", false},
		{"Brad Pitt", "Brad Pitt", false},
		{"William Alvin Pitt", "Brad Pitt", true},
	}
	for _, tt := range tests {
		if got := TextConflict(tt.a, tt.b); got != tt.want {
			t.Errorf("TextConflict(%q, %q) = %v", tt.a, tt.b, got)
		}
	}
}

func TestDensifyIsDeterministic(t *testing.T) {
	f := getFixture(t)
	id := f.world.EntitiesOfType("PERSON")[2]
	gd := f.world.Article(id, false)
	_, r1, _ := f.densify(t, gd.Doc.Text, DefaultParams())
	_, r2, _ := f.densify(t, gd.Doc.Text, DefaultParams())
	if len(r1.Assignment) != len(r2.Assignment) {
		t.Fatal("nondeterministic assignment count")
	}
	for k, v := range r1.Assignment {
		if r2.Assignment[k] != v {
			t.Errorf("node %d: %s vs %s", k, v, r2.Assignment[k])
		}
	}
}
