package store

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// blobMap is an in-memory stand-in for the persistence layer's blob
// store: leaf segments round-trip through the codec on fault-in, exactly
// as a disk-backed loader would.
type blobMap struct {
	mu    sync.Mutex
	blobs map[string][]byte
	loads int
}

func (m *blobMap) put(key string, seg *Segment) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.blobs == nil {
		m.blobs = make(map[string][]byte)
	}
	m.blobs[key] = EncodeSegment(seg)
}

func (m *blobMap) loader(key string) func() (*Segment, error) {
	return func() (*Segment, error) {
		m.mu.Lock()
		blob, ok := m.blobs[key]
		m.loads++
		m.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("no blob %q", key)
		}
		return DecodeSegment(blob)
	}
}

// demoteAll drops every demotable payload reachable from the tree,
// returning how many segments were demoted.
func demoteAll(t *Tree) int {
	n := 0
	for _, s := range t.AllSegments() {
		if s.Demote() > 0 {
			n++
		}
	}
	return n
}

// buildDemotableTree pushes nDocs random shards (evicting a few along the
// way), persists each leaf into blobs and arms its loader. Returns the
// tree and a reference tree built from always-resident copies of the same
// shards under the identical push/remove schedule.
func buildDemotableTree(t *testing.T, seed int64, nDocs int) (tree, ref *Tree, blobs *blobMap) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	blobs = &blobMap{}
	tree, ref = NewTree(nil), NewTree(nil)
	live := []uint64{}
	for i := 0; i < nDocs; i++ {
		doc := fmt.Sprintf("doc-%d", i)
		shard := randShard(rng, doc)
		leaf := SealSegment(shard, "blob:"+doc)
		refLeaf := SealSegment(shard, "blob:"+doc)
		blobs.put(doc, leaf)
		leaf.AttachLoader(blobs.loader(doc))
		seq := uint64(i)
		tree = tree.Push(leaf, seq)
		ref = ref.Push(refLeaf, seq)
		live = append(live, seq)
		if len(live) > 3 && rng.Intn(3) == 0 {
			victim := live[rng.Intn(len(live)-1)] // never the newest
			var ok bool
			if tree, ok = tree.Remove(victim); !ok {
				t.Fatalf("remove %d not found", victim)
			}
			ref, _ = ref.Remove(victim)
			for j, s := range live {
				if s == victim {
					live = append(live[:j], live[j+1:]...)
					break
				}
			}
		}
	}
	return tree, ref, blobs
}

// TestDemoteFaultBackMaterialize demotes every segment of a tree (leaves
// to their blobs, merges to their re-merge loaders) and asserts the
// faulted-back materialization is byte-identical to the always-resident
// reference.
func TestDemoteFaultBackMaterialize(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		tree, ref, blobs := buildDemotableTree(t, seed, 24)
		if n := demoteAll(tree); n == 0 {
			t.Fatal("nothing demoted")
		}
		for _, s := range tree.AllSegments() {
			if s.Resident() {
				t.Fatalf("segment %q still resident after demote", s.ID())
			}
		}
		sameKB(t, tree.Materialize(), ref.Materialize(), fmt.Sprintf("seed %d", seed))
		if blobs.loads == 0 {
			t.Fatal("materialize never faulted a leaf blob")
		}
		// Fingerprints must match an all-resident build too.
		if tree.Materialize().Fingerprint() != ref.Materialize().Fingerprint() {
			t.Fatalf("seed %d: fingerprint mismatch after fault-back", seed)
		}
	}
}

// TestDemoteFaultBackScan demotes everything and asserts ScanPrefix (the
// pattern-query substrate), Lookup and EstimatePrefix agree with the
// resident reference for every key.
func TestDemoteFaultBackScan(t *testing.T) {
	tree, ref, _ := buildDemotableTree(t, 42, 24)
	demoteAll(tree)

	collect := func(tr *Tree, prefix string) []string {
		var out []string
		c := tr.ScanPrefix(prefix)
		for {
			k, f, ok := c.Next()
			if !ok {
				return out
			}
			out = append(out, fmt.Sprintf("%s=%s|%.3f|%v|%s", k, f.String(), f.Confidence, f.Source, f.Pattern))
		}
	}
	if got, want := collect(tree, ""), collect(ref, ""); len(got) != len(want) {
		t.Fatalf("full scan: %d rows vs %d", len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("full scan row %d:\n got %s\nwant %s", i, got[i], want[i])
			}
		}
	}

	demoteAll(tree) // drop again: per-prefix scans fault independently
	kb := ref.Materialize()
	for _, f := range kb.Facts() {
		prefix := ValueKey(f.Subject)
		got, want := collect(tree, prefix), collect(ref, prefix)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("prefix %q: scans differ\n got %v\nwant %v", prefix, got, want)
		}
		if g, w := tree.EstimatePrefix(prefix), ref.EstimatePrefix(prefix); g != w {
			t.Fatalf("prefix %q: estimate %d vs %d", prefix, g, w)
		}
	}
	for i := range kb.Facts() {
		k := string(appendFactKey(nil, &kb.Facts()[i]))
		gf, gok := tree.Lookup(k)
		wf, wok := ref.Lookup(k)
		if gok != wok || gf.String() != wf.String() || gf.Confidence != wf.Confidence || gf.Source != wf.Source {
			t.Fatalf("lookup %q differs", k)
		}
	}
}

// TestDemoteConcurrentReaders demotes segments while readers scan and
// materialize — cursors pin the payload they opened over, fresh accesses
// fault back in; run under -race this is the aliasing safety net.
func TestDemoteConcurrentReaders(t *testing.T) {
	tree, ref, _ := buildDemotableTree(t, 7, 16)
	want := ref.Materialize().Fingerprint()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				demoteAll(tree)
			}
		}
	}()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if got := tree.Materialize().Fingerprint(); got != want {
					t.Errorf("reader saw wrong fingerprint")
					return
				}
				c := tree.ScanPrefix("")
				for {
					if _, _, ok := c.Next(); !ok {
						break
					}
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}
