// Package entityrepo implements the entity repository (E) of the paper
// (§2.2): the stand-in for Yago. It stores known entities with their alias
// names, fine-grained semantic types and gender attributes. As in the
// paper, only alias and gender knowledge is used by QKBfly — none of the
// repository's facts — and entities recognized during KB construction are
// not required to be present here (emerging entities).
package entityrepo

import (
	"sort"
	"strings"

	"qkbfly/internal/nlp"
)

// Entity is one repository entry.
type Entity struct {
	ID      string // canonical identifier, e.g. "Brad_Pitt"
	Name    string // canonical display name
	Aliases []string
	Types   []string // fine-grained types, most specific first
	Gender  nlp.Gender
}

// Repo is the entity repository with alias and type indexes.
type Repo struct {
	entities map[string]*Entity
	byAlias  map[string][]string // normalized alias -> entity IDs
	order    []string            // insertion order, for determinism
}

// New returns an empty repository.
func New() *Repo {
	return &Repo{
		entities: make(map[string]*Entity),
		byAlias:  make(map[string][]string),
	}
}

// Add inserts an entity. The canonical name is always registered as an
// alias. Adding an existing ID replaces the previous entry's aliases.
func (r *Repo) Add(e *Entity) {
	if _, exists := r.entities[e.ID]; !exists {
		r.order = append(r.order, e.ID)
	}
	r.entities[e.ID] = e
	seen := map[string]bool{}
	for _, a := range append([]string{e.Name}, e.Aliases...) {
		key := Normalize(a)
		if key == "" || seen[key] {
			continue
		}
		seen[key] = true
		ids := r.byAlias[key]
		found := false
		for _, id := range ids {
			if id == e.ID {
				found = true
				break
			}
		}
		if !found {
			r.byAlias[key] = append(ids, e.ID)
		}
	}
}

// Get returns the entity with the given ID, or nil.
func (r *Repo) Get(id string) *Entity { return r.entities[id] }

// Len returns the number of entities.
func (r *Repo) Len() int { return len(r.entities) }

// IDs returns all entity IDs in insertion order.
func (r *Repo) IDs() []string { return append([]string(nil), r.order...) }

// Candidates returns the IDs of all entities having the given surface form
// as an alias, sorted for determinism.
func (r *Repo) Candidates(alias string) []string {
	ids := r.byAlias[Normalize(alias)]
	out := append([]string(nil), ids...)
	sort.Strings(out)
	return out
}

// LookupType implements ner.Gazetteer: it returns the coarse NER type of
// the alias if known. When several entities share the alias, the first
// (sorted) entity's type is used — the ambiguity is resolved later by the
// graph algorithm, which considers all candidates.
func (r *Repo) LookupType(alias string) (nlp.NERType, bool) {
	ids := r.Candidates(alias)
	if len(ids) == 0 {
		return nlp.NERNone, false
	}
	return CoarseType(r.entities[ids[0]].Types), true
}

// Gender returns the gender attribute of an entity.
func (r *Repo) Gender(id string) nlp.Gender {
	if e := r.entities[id]; e != nil {
		return e.Gender
	}
	return nlp.GenderUnknown
}

// Normalize lower-cases, collapses whitespace and drops periods for alias
// matching ("Margate F.C." and "Margate FC" normalize identically; the
// initial in "Petra G." survives tokenization differences).
func Normalize(alias string) string {
	alias = strings.ReplaceAll(alias, ".", "")
	return strings.Join(strings.Fields(strings.ToLower(alias)), " ")
}

// ---------------------------------------------------------------------------
// Type system
// ---------------------------------------------------------------------------

// The fine-grained type system, modeled on the paper's infobox-derived
// 167-type hierarchy (§4, "Type Signatures"); here a representative subset
// with an explicit subsumption hierarchy.
const (
	TypePerson         = "PERSON"
	TypeActor          = "ACTOR"
	TypeMusician       = "MUSICAL_ARTIST"
	TypePolitician     = "POLITICIAN"
	TypeAthlete        = "ATHLETE"
	TypeFootballer     = "FOOTBALLER"
	TypeTennisPlayer   = "TENNIS_PLAYER"
	TypeScientist      = "SCIENTIST"
	TypeBusinessPerson = "BUSINESSPERSON"
	TypeModel          = "MODEL"
	TypeWriter         = "WRITER"
	TypeDirector       = "DIRECTOR"
	TypeCharacter      = "FICTIONAL_CHARACTER"
	TypeOrganization   = "ORGANIZATION"
	TypeCompany        = "COMPANY"
	TypeFootballClub   = "FOOTBALL_CLUB"
	TypeBand           = "BAND"
	TypeUniversity     = "UNIVERSITY"
	TypeParty          = "POLITICAL_PARTY"
	TypeCharity        = "CHARITY"
	TypeLocation       = "LOCATION"
	TypeCity           = "CITY"
	TypeCountry        = "COUNTRY"
	TypeRegion         = "REGION"
	TypeWork           = "CREATIVE_WORK"
	TypeFilm           = "FILM"
	TypeAlbum          = "ALBUM"
	TypeSong           = "SONG"
	TypeSeries         = "TV_SERIES"
	TypeAward          = "AWARD"
	TypeEvent          = "EVENT"
)

// parents is the subsumption hierarchy (child -> parent), e.g.
// FOOTBALLER ⊆ ATHLETE ⊆ PERSON.
var parents = map[string]string{
	TypeActor: TypePerson, TypeMusician: TypePerson,
	TypePolitician: TypePerson, TypeAthlete: TypePerson,
	TypeFootballer: TypeAthlete, TypeTennisPlayer: TypeAthlete,
	TypeScientist: TypePerson, TypeBusinessPerson: TypePerson,
	TypeModel: TypePerson, TypeWriter: TypePerson,
	TypeDirector: TypePerson, TypeCharacter: TypePerson,
	TypeCompany: TypeOrganization, TypeFootballClub: TypeOrganization,
	TypeBand: TypeOrganization, TypeUniversity: TypeOrganization,
	TypeParty: TypeOrganization, TypeCharity: TypeOrganization,
	TypeCity: TypeLocation, TypeCountry: TypeLocation,
	TypeRegion: TypeLocation,
	TypeFilm:   TypeWork, TypeAlbum: TypeWork, TypeSong: TypeWork,
	TypeSeries: TypeWork,
}

// Supertypes returns the type and all of its ancestors, most specific
// first.
func Supertypes(t string) []string {
	out := []string{t}
	for {
		p, ok := parents[t]
		if !ok {
			return out
		}
		out = append(out, p)
		t = p
	}
}

// TypeClosure returns the union of supertypes of all given types.
func TypeClosure(types []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, t := range types {
		for _, s := range Supertypes(t) {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	return out
}

// Subsumes reports whether ancestor subsumes (or equals) t.
func Subsumes(ancestor, t string) bool {
	for _, s := range Supertypes(t) {
		if s == ancestor {
			return true
		}
	}
	return false
}

// CoarseType maps fine-grained types to the paper's five NER types.
func CoarseType(types []string) nlp.NERType {
	for _, t := range TypeClosure(types) {
		switch t {
		case TypePerson:
			return nlp.NERPerson
		case TypeOrganization:
			return nlp.NEROrganization
		case TypeLocation:
			return nlp.NERLocation
		}
	}
	return nlp.NERMisc
}
