package qkbfly_test

import (
	"strings"
	"testing"

	"qkbfly"
	"qkbfly/internal/corpus"
	"qkbfly/internal/kb/store"
	"qkbfly/internal/nlp/clause"
	"qkbfly/internal/nlp/depparse"
	"qkbfly/internal/search"
	"qkbfly/internal/stats"
)

type fixture struct {
	world *corpus.World
	res   qkbfly.Resources
}

var fx *fixture

func getFixture(t *testing.T) *fixture {
	t.Helper()
	if fx != nil {
		return fx
	}
	w := corpus.NewWorld(corpus.SmallConfig())
	pipe := clause.NewPipeline(w.Repo, depparse.Malt)
	bg := w.BackgroundCorpus()
	st := stats.Build(corpus.Docs(bg), w.Repo, pipe)
	idx := search.New(corpus.Docs(append(append([]*corpus.GenDoc{}, bg...), w.NewsDataset(2)...)))
	fx = &fixture{world: w, res: qkbfly.Resources{
		Repo: w.Repo, Patterns: w.Patterns, Stats: st, Index: idx,
	}}
	return fx
}

func TestBuildKBEndToEnd(t *testing.T) {
	f := getFixture(t)
	sys := qkbfly.New(f.res, qkbfly.DefaultConfig())
	docs := corpus.Docs(f.world.WikiDataset(10))
	kb, bs := sys.BuildKB(docs)
	if kb.Len() == 0 {
		t.Fatal("empty KB")
	}
	if bs.Documents != 10 || bs.Sentences == 0 || bs.Clauses == 0 {
		t.Errorf("stats = %+v", bs)
	}
	if len(bs.PerDocElapsed) != 10 {
		t.Errorf("per-doc timings = %d", len(bs.PerDocElapsed))
	}
	// The KB must contain both linked and emerging entities.
	if kb.EmergingCount() == 0 {
		t.Error("no emerging entities")
	}
	if kb.EmergingCount() == len(kb.Entities()) {
		t.Error("no linked entities")
	}
}

func TestModesDiffer(t *testing.T) {
	f := getFixture(t)
	joint := qkbfly.New(f.res, qkbfly.DefaultConfig())
	nounCfg := qkbfly.DefaultConfig()
	nounCfg.Mode = qkbfly.NounOnly
	noun := qkbfly.New(f.res, nounCfg)

	jointKB, _ := joint.BuildKB(corpus.Docs(f.world.WikiDataset(10)))
	nounKB, _ := noun.BuildKB(corpus.Docs(f.world.WikiDataset(10)))
	// Without co-reference resolution the noun-only system extracts
	// strictly fewer facts (pronoun-subject sentences are lost).
	if nounKB.Len() >= jointKB.Len() {
		t.Errorf("noun-only yield %d >= joint yield %d", nounKB.Len(), jointKB.Len())
	}
}

func TestILPMode(t *testing.T) {
	f := getFixture(t)
	cfg := qkbfly.DefaultConfig()
	cfg.Algorithm = qkbfly.ILP
	sys := qkbfly.New(f.res, cfg)
	kb, _ := sys.BuildKB(corpus.Docs(f.world.WikiDataset(5)))
	if kb.Len() == 0 {
		t.Fatal("ILP mode produced no facts")
	}
}

func TestFilterTau(t *testing.T) {
	f := getFixture(t)
	cfg := qkbfly.DefaultConfig()
	cfg.Tau = 0.5
	sys := qkbfly.New(f.res, cfg)
	kb, _ := sys.BuildKB(corpus.Docs(f.world.WikiDataset(10)))
	filtered := sys.FilterTau(kb)
	if len(filtered) > kb.Len() {
		t.Error("filter added facts")
	}
	for _, fact := range filtered {
		if fact.Confidence < 0.5 {
			t.Errorf("fact below tau: %f", fact.Confidence)
		}
	}
}

func TestBuildKBForQuery(t *testing.T) {
	f := getFixture(t)
	sys := qkbfly.New(f.res, qkbfly.DefaultConfig())
	id := f.world.EntitiesOfType("ACTOR")[0]
	name := f.world.Entity(id).Name
	kb, docs, _ := sys.BuildKBForQuery(name, "wikipedia", 1)
	if len(docs) != 1 {
		t.Fatalf("retrieved %d docs", len(docs))
	}
	if kb.Len() == 0 {
		t.Fatal("query-driven KB empty")
	}
	// Facts about the queried entity must be present.
	if facts := kb.FactsAbout(id); len(facts) == 0 {
		t.Errorf("no facts about %s; entities: %v", id, kb.Entities())
	}
}

func TestTypeSearchOnResultKB(t *testing.T) {
	f := getFixture(t)
	sys := qkbfly.New(f.res, qkbfly.DefaultConfig())
	kb, _ := sys.BuildKB(corpus.Docs(f.world.WikiDataset(10)))
	// The §6 demo search: Type: prefix on subjects.
	res := kb.Search(store.Query{Subject: "Type:PERSON"})
	if len(res) == 0 {
		t.Error("Type:PERSON search empty")
	}
	for _, fact := range res {
		rec := kb.Entity(fact.Subject.EntityID)
		if rec == nil {
			t.Fatalf("missing entity record for %s", fact.Subject.EntityID)
		}
		ok := false
		for _, typ := range rec.Types {
			if strings.EqualFold(typ, "PERSON") {
				ok = true
			}
		}
		if !ok {
			t.Errorf("non-person subject %s in Type:PERSON results", fact.Subject.EntityID)
		}
	}
}

func TestQueryAgainIsIdempotent(t *testing.T) {
	f := getFixture(t)
	sys := qkbfly.New(f.res, qkbfly.DefaultConfig())
	id := f.world.EntitiesOfType("ACTOR")[0]
	name := f.world.Entity(id).Name
	kb1, _, _ := sys.BuildKBForQuery(name, "wikipedia", 1)
	kb2, _, _ := sys.BuildKBForQuery(name, "wikipedia", 1)
	if kb1.Len() != kb2.Len() {
		t.Errorf("repeated query changed yield: %d vs %d (index mutation?)", kb1.Len(), kb2.Len())
	}
}
