package store

import "testing"

// sampleKB builds a small KB with entities, multi-object facts and a
// duplicate-key update, exercising every piece of state Clone must copy.
func cloneSampleKB() *KB {
	kb := New()
	kb.AddEntity(EntityRecord{ID: "E1", Name: "Alpha", Mentions: []string{"Alpha", "A."}, Types: []string{"PERSON"}})
	kb.AddEntity(EntityRecord{ID: "E2", Name: "Beta", Mentions: []string{"Beta"}, Types: []string{"COMPANY"}, Emerging: true})
	kb.AddFact(Fact{
		Subject:    Value{EntityID: "E1"},
		Relation:   "work_for",
		Pattern:    "works for",
		Objects:    []Value{{EntityID: "E2"}, {Literal: "2016", IsTime: true}},
		Confidence: 0.8,
		Source:     Provenance{DocID: "d1", SentIndex: 0},
	})
	kb.AddFact(Fact{
		Subject:    Value{EntityID: "E2"},
		Relation:   "locate_in",
		Objects:    []Value{{Literal: "Paris"}},
		Confidence: 0.4,
		Source:     Provenance{DocID: "d1", SentIndex: 2},
	})
	// A duplicate with higher confidence updates in place.
	kb.AddFact(Fact{
		Subject:    Value{EntityID: "E2"},
		Relation:   "locate_in",
		Objects:    []Value{{Literal: "Paris"}},
		Confidence: 0.9,
		Source:     Provenance{DocID: "d2", SentIndex: 1},
	})
	return kb
}

// extraShard is content partially overlapping sampleKB, for merge tests.
func cloneExtraShard() *KB {
	sh := New()
	sh.AddEntity(EntityRecord{ID: "E1", Name: "Alpha", Mentions: []string{"Alpha Prime"}, Types: []string{"PERSON"}})
	sh.AddEntity(EntityRecord{ID: "E3", Name: "Gamma", Mentions: []string{"Gamma"}, Types: []string{"LOCATION"}})
	sh.AddFact(Fact{
		Subject:    Value{EntityID: "E1"},
		Relation:   "bear_in",
		Objects:    []Value{{EntityID: "E3"}},
		Confidence: 0.7,
		Source:     Provenance{DocID: "d3", SentIndex: 0},
	})
	sh.AddFact(Fact{ // exact duplicate of a sampleKB fact, lower confidence
		Subject:    Value{EntityID: "E2"},
		Relation:   "locate_in",
		Objects:    []Value{{Literal: "Paris"}},
		Confidence: 0.3,
		Source:     Provenance{DocID: "d3", SentIndex: 4},
	})
	return sh
}

// TestCloneFingerprintIdentical: a clone carries exactly the original's
// semantic content.
func TestCloneFingerprintIdentical(t *testing.T) {
	kb := cloneSampleKB()
	cp := kb.Clone()
	if cp.Fingerprint() != kb.Fingerprint() {
		t.Error("clone fingerprint differs from original")
	}
	if cp.Len() != kb.Len() {
		t.Errorf("clone has %d facts, original %d", cp.Len(), kb.Len())
	}
}

// TestCloneIsolation: mutating the clone (new facts, entity extensions,
// duplicate-confidence updates) must leave the original untouched, and
// vice versa.
func TestCloneIsolation(t *testing.T) {
	kb := cloneSampleKB()
	before := kb.Fingerprint()
	cp := kb.Clone()

	cp.AddEntity(EntityRecord{ID: "E1", Mentions: []string{"MUTATED"}, Types: []string{"ACTOR"}})
	cp.AddFact(Fact{
		Subject:    Value{EntityID: "E9"},
		Relation:   "new_rel",
		Objects:    []Value{{Literal: "x"}},
		Confidence: 1,
	})
	// In-place confidence update through the dedup path.
	cp.AddFact(Fact{
		Subject:    Value{EntityID: "E1"},
		Relation:   "work_for",
		Objects:    []Value{{EntityID: "E2"}, {Literal: "2016", IsTime: true}},
		Confidence: 0.99,
		Source:     Provenance{DocID: "zz", SentIndex: 9},
	})
	// Direct writes into returned storage.
	cp.Facts()[0].Objects[0] = Value{Literal: "CORRUPTED"}
	cp.Entity("E2").Mentions[0] = "CORRUPTED"

	if kb.Fingerprint() != before {
		t.Fatal("mutating the clone changed the original")
	}

	cpBefore := cp.Fingerprint()
	kb.AddFact(Fact{
		Subject:    Value{EntityID: "E1"},
		Relation:   "other",
		Objects:    []Value{{Literal: "y"}},
		Confidence: 0.1,
	})
	if cp.Fingerprint() != cpBefore {
		t.Fatal("mutating the original changed the clone")
	}
}

// TestCloneMergeContinuation: merging further shards into a clone yields
// exactly the KB that one uninterrupted merge sequence produces — the
// property sessions use to fold increments into copies.
func TestCloneMergeContinuation(t *testing.T) {
	s1, s2 := cloneSampleKB(), cloneExtraShard()

	batch := New()
	batch.Merge(s1)
	batch.Merge(s2)

	incremental := New()
	incremental.Merge(s1)
	step := incremental.Clone()
	step.Merge(s2)

	if step.Fingerprint() != batch.Fingerprint() {
		t.Error("merge into clone differs from uninterrupted merge")
	}
	// IDs must continue compactly, exactly as the batch assigned them.
	for i := range batch.Facts() {
		if batch.Facts()[i].ID != step.Facts()[i].ID {
			t.Errorf("fact %d: ID %d vs %d", i, batch.Facts()[i].ID, step.Facts()[i].ID)
		}
	}
	// The pre-clone state must be unaffected by the continuation.
	solo := New()
	solo.Merge(s1)
	if incremental.Fingerprint() != solo.Fingerprint() {
		t.Error("continuing on a clone mutated the base KB")
	}
}
