package deepdive

import (
	"strings"
	"testing"

	"qkbfly/internal/corpus"
	"qkbfly/internal/kb/entityrepo"
	"qkbfly/internal/nlp"
	"qkbfly/internal/nlp/clause"
	"qkbfly/internal/nlp/depparse"
)

func trained(t *testing.T) (*Extractor, *corpus.World) {
	t.Helper()
	w := corpus.NewWorld(corpus.SmallConfig())
	known := map[string]bool{}
	for i := range w.Facts {
		f := &w.Facts[i]
		if f.Relation != "married_to" || !f.Objects[0].IsEntity() {
			continue
		}
		a := w.Entity(f.Subject)
		b := w.Entity(f.Objects[0].EntityID)
		for _, an := range append([]string{a.Name}, a.Aliases...) {
			for _, bn := range append([]string{b.Name}, b.Aliases...) {
				known[pairKey(an, bn)] = true
			}
		}
	}
	dd := New(clause.NewPipeline(w.Repo, depparse.Malt))
	var docs []*nlp.Document
	for _, gd := range w.BackgroundCorpus() {
		id := strings.TrimPrefix(gd.Doc.ID, "wiki:")
		e := w.Entity(id)
		if e != nil && entityrepo.Subsumes(entityrepo.TypePerson, e.Type) {
			docs = append(docs, gd.Doc)
		}
	}
	pos, neg := dd.Train(docs, known)
	if pos == 0 || neg == 0 {
		t.Fatalf("training degenerate: %d pos %d neg", pos, neg)
	}
	return dd, w
}

func TestCandidateGeneration(t *testing.T) {
	w := corpus.NewWorld(corpus.SmallConfig())
	dd := New(clause.NewPipeline(w.Repo, depparse.Malt))
	doc := &nlp.Document{ID: "t", Text: "Brad Pitt married Angelina Jolie in 2005. Nothing else happened."}
	cands := dd.Candidates(doc)
	if len(cands) != 1 {
		t.Fatalf("candidates = %d", len(cands))
	}
	c := cands[0]
	if c.Features["btw:marry"] != 1 {
		t.Errorf("missing between-feature: %v", c.Features)
	}
	if c.Features["cue"] != 1 {
		t.Errorf("missing cue feature: %v", c.Features)
	}
	if c.PairKey != "angelina jolie|brad pitt" {
		t.Errorf("pair key = %q", c.PairKey)
	}
}

func TestMarriageSentenceRanksAboveOthers(t *testing.T) {
	dd, w := trained(t)
	// Build a doc with one marriage sentence and one co-occurrence noise
	// sentence, using known repo names.
	people := w.EntitiesOfType(entityrepo.TypeActor)
	a := w.Entity(people[0]).Name
	b := w.Entity(people[1]).Name
	c := w.Entity(people[2]).Name
	doc := &nlp.Document{ID: "t", Text: a + " married " + b + " in 2003. " + a + " met " + c + " at the ceremony."}
	pairs := dd.Extract([]*nlp.Document{doc})
	if len(pairs) != 2 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	if !strings.Contains(pairs[0].PairKey, strings.ToLower(lastOf(b))) {
		t.Errorf("top pair = %q, want the married couple first (probs %f vs %f)",
			pairs[0].PairKey, pairs[0].Probability, pairs[1].Probability)
	}
	if pairs[0].Probability <= pairs[1].Probability {
		t.Errorf("marriage pair %f not above noise pair %f",
			pairs[0].Probability, pairs[1].Probability)
	}
}

func lastOf(name string) string {
	parts := strings.Fields(name)
	return parts[len(parts)-1]
}

func TestSamePairCoupling(t *testing.T) {
	dd, w := trained(t)
	people := w.EntitiesOfType(entityrepo.TypeActor)
	a := w.Entity(people[0]).Name
	b := w.Entity(people[1]).Name
	// The same pair mentioned twice: coupling should not lower the
	// marginal below the single-occurrence case.
	doc1 := &nlp.Document{ID: "t1", Text: a + " married " + b + " in 2003."}
	single := dd.Extract([]*nlp.Document{doc1})[0].Probability
	doc2a := &nlp.Document{ID: "t2", Text: a + " married " + b + " in 2003."}
	doc2b := &nlp.Document{ID: "t3", Text: a + " wed " + b + " in Quilholm."}
	both := dd.Extract([]*nlp.Document{doc2a, doc2b})
	if both[0].Probability+1e-9 < single-0.1 {
		t.Errorf("coupled marginal %f far below single %f", both[0].Probability, single)
	}
}

func TestExtractDeterministic(t *testing.T) {
	dd, w := trained(t)
	docs := corpus.Docs(w.WikiDataset(10))
	a := dd.Extract(docs)
	b := dd.Extract(corpus.Docs(w.WikiDataset(10)))
	if len(a) != len(b) {
		t.Fatal("nondeterministic pair count")
	}
	for i := range a {
		if a[i].PairKey != b[i].PairKey {
			t.Error("nondeterministic ranking")
			break
		}
	}
}

func TestUntrainedModel(t *testing.T) {
	w := corpus.NewWorld(corpus.SmallConfig())
	dd := New(clause.NewPipeline(w.Repo, depparse.Malt))
	doc := &nlp.Document{ID: "t", Text: "Brad Pitt married Angelina Jolie."}
	pairs := dd.Extract([]*nlp.Document{doc})
	for _, p := range pairs {
		if p.Probability != 0 {
			t.Errorf("untrained probability = %f", p.Probability)
		}
	}
}
