package canon

import (
	"strings"
	"testing"

	"qkbfly/internal/corpus"
	"qkbfly/internal/densify"
	"qkbfly/internal/graph"
	"qkbfly/internal/kb/store"
	"qkbfly/internal/nlp"
	"qkbfly/internal/nlp/clause"
	"qkbfly/internal/nlp/depparse"
	"qkbfly/internal/stats"
)

type fixture struct {
	world *corpus.World
	stats *stats.Stats
	pipe  *clause.Pipeline
}

var fx *fixture

func getFixture(t *testing.T) *fixture {
	t.Helper()
	if fx == nil {
		w := corpus.NewWorld(corpus.SmallConfig())
		pipe := clause.NewPipeline(w.Repo, depparse.Malt)
		st := stats.Build(corpus.Docs(w.BackgroundCorpus()), w.Repo, pipe)
		fx = &fixture{world: w, stats: st, pipe: pipe}
	}
	return fx
}

func (f *fixture) populate(t *testing.T, text string) *store.KB {
	t.Helper()
	doc := &nlp.Document{ID: "test", Text: text}
	cls := f.pipe.AnnotateDocument(doc)
	g := graph.NewBuilder(f.world.Repo).Build(doc, cls)
	scorer := densify.NewScorer(f.stats, f.world.Repo, densify.DefaultParams(), doc)
	res := densify.Densify(g, scorer)
	kb := store.New()
	New(f.world.Patterns, f.world.Repo).Populate(kb, doc, g, res)
	return kb
}

func TestBinaryFact(t *testing.T) {
	f := getFixture(t)
	id := f.world.EntitiesOfType("ACTOR")[0]
	name := f.world.Entity(id).Name
	kb := f.populate(t, name+" is an actor.")
	facts := kb.Search(store.Query{Predicate: "is_a"})
	if len(facts) != 1 {
		t.Fatalf("is_a facts = %d", len(facts))
	}
	if facts[0].Subject.EntityID != id {
		t.Errorf("subject = %s", facts[0].Subject.EntityID)
	}
	if facts[0].Objects[0].Literal != "actor" {
		t.Errorf("object = %v", facts[0].Objects[0])
	}
}

func TestHigherArityFact(t *testing.T) {
	f := getFixture(t)
	actors := f.world.EntitiesOfType("ACTOR")
	name := f.world.Entity(actors[0]).Name
	films := f.world.EntitiesOfType("FILM")
	film := f.world.Entity(films[0]).Name
	kb := f.populate(t, name+" played Captain Veyron in "+film+".")
	facts := kb.Search(store.Query{Predicate: "play_in"})
	if len(facts) != 1 {
		t.Fatalf("play_in facts = %v", kb.Facts())
	}
	if facts[0].Arity() != 3 {
		t.Errorf("arity = %d, want 3 (ternary)", facts[0].Arity())
	}
}

func TestEmergingEntity(t *testing.T) {
	f := getFixture(t)
	kb := f.populate(t, "Zinnia Quellwater is an actress.")
	found := false
	for _, e := range kb.Entities() {
		if e.Emerging && strings.Contains(e.ID, "Zinnia") {
			found = true
			if len(e.Mentions) == 0 {
				t.Error("emerging entity has no mentions")
			}
		}
	}
	if !found {
		t.Errorf("no emerging entity: %v", kb.Entities())
	}
}

func TestPronounSubjectResolvedThroughAntecedent(t *testing.T) {
	f := getFixture(t)
	id := f.world.EntitiesOfType("ACTOR")[0]
	name := f.world.Entity(id).Name
	kb := f.populate(t, name+" is an actor. He supports the Clear Water Foundation.")
	facts := kb.Search(store.Query{Predicate: "support"})
	if len(facts) != 1 {
		t.Fatalf("supports facts = %v", kb.Facts())
	}
	if facts[0].Subject.EntityID != id {
		t.Errorf("pronoun fact subject = %s, want %s", facts[0].Subject.EntityID, id)
	}
}

func TestTimeLiteral(t *testing.T) {
	f := getFixture(t)
	id := f.world.EntitiesOfType("PERSON")[0]
	name := f.world.Entity(id).Name
	kb := f.populate(t, name+" was born in Quilholm on May 3, 1970.")
	for _, fact := range kb.Facts() {
		for _, o := range fact.Objects {
			if o.IsTime && o.Literal != "1970-05-03" {
				t.Errorf("time literal = %q", o.Literal)
			}
		}
	}
}

func TestNegatedClauseDropped(t *testing.T) {
	f := getFixture(t)
	id := f.world.EntitiesOfType("PERSON")[0]
	name := f.world.Entity(id).Name
	kb := f.populate(t, name+" did not marry anyone.")
	if facts := kb.Search(store.Query{Predicate: "marr"}); len(facts) != 0 {
		t.Errorf("negated clause produced facts: %v", facts)
	}
}

func TestComplementWithPrepSuppressed(t *testing.T) {
	f := getFixture(t)
	id := f.world.EntitiesOfType("PERSON")[0]
	e := f.world.Entity(id)
	kb := f.populate(t, e.Name+" is the son of Quentin Veyblatt.")
	// The junk fact <X, be, "son"> must not appear.
	for _, fact := range kb.Facts() {
		for _, o := range fact.Objects {
			if o.Literal == "son" {
				t.Errorf("junk complement fact: %s", fact.String())
			}
		}
	}
	// The born_to fact from the "be son of" edge must appear.
	if facts := kb.Search(store.Query{Predicate: "born_to"}); len(facts) != 1 {
		t.Errorf("born_to facts = %v", kb.Facts())
	}
}

func TestConfidenceIsMinOverArgs(t *testing.T) {
	f := getFixture(t)
	id := f.world.EntitiesOfType("ACTOR")[0]
	name := f.world.Entity(id).Name
	kb := f.populate(t, name+" is an actor.")
	for _, fact := range kb.Facts() {
		if fact.Confidence <= 0 || fact.Confidence > 1 {
			t.Errorf("confidence %f out of range: %s", fact.Confidence, fact.String())
		}
	}
}

func TestProvenance(t *testing.T) {
	f := getFixture(t)
	id := f.world.EntitiesOfType("ACTOR")[0]
	name := f.world.Entity(id).Name
	kb := f.populate(t, name+" is an actor. He won the Aurum Award.")
	for _, fact := range kb.Facts() {
		if fact.Source.DocID != "test" {
			t.Errorf("provenance doc = %q", fact.Source.DocID)
		}
	}
}
