package intern

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"unsafe"
)

func dataPtr(s string) uintptr {
	return uintptr(unsafe.Pointer(unsafe.StringData(s)))
}

func TestInternCanonicalizes(t *testing.T) {
	tab := NewTable()
	a := tab.Intern("brad pitt")
	b := tab.Intern(strings.Join([]string{"brad", "pitt"}, " "))
	if a != b {
		t.Fatalf("equal strings interned differently: %q vs %q", a, b)
	}
	if dataPtr(a) != dataPtr(b) {
		t.Fatal("interned copies do not share backing storage")
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tab.Len())
	}
	if tab.Intern("") != "" {
		t.Fatal("empty string must intern to itself")
	}
}

func TestInternDetachesFromLargeBacking(t *testing.T) {
	tab := NewTable()
	big := strings.Repeat("x", 1<<16) + "needle"
	sub := big[1<<16:]
	got := tab.Intern(sub)
	if got != "needle" {
		t.Fatalf("got %q", got)
	}
	if dataPtr(got) == dataPtr(sub) {
		t.Fatal("interned string still aliases the large backing array")
	}
}

func TestInternBytes(t *testing.T) {
	tab := NewTable()
	s := tab.Intern("relation phrase")
	b := tab.InternBytes([]byte("relation phrase"))
	if dataPtr(s) != dataPtr(b) {
		t.Fatal("InternBytes did not return the canonical copy")
	}
	if tab.InternBytes(nil) != "" {
		t.Fatal("nil bytes must intern to the empty string")
	}
}

func TestLower(t *testing.T) {
	cases := map[string]string{
		"Brad Pitt": "brad pitt",
		"already":   "already",
		"ALLCAPS":   "allcaps",
		"Émile":     "émile", // non-ASCII falls back to strings.ToLower
		"":          "",
	}
	for in, want := range cases {
		if got := Lower(in); got != want {
			t.Errorf("Lower(%q) = %q, want %q", in, got, want)
		}
	}
	// The lowercase of an already-lower ASCII string is the input itself.
	s := "no-alloc path"
	if got := Lower(s); dataPtr(got) != dataPtr(s) {
		t.Error("Lower allocated for an already-lowercase ASCII string")
	}
	// Repeated calls return the same canonical copy.
	if dataPtr(Lower("Angelina Jolie")) != dataPtr(Lower("Angelina Jolie")) {
		t.Error("Lower cache returned distinct copies")
	}
}

func TestAppendLower(t *testing.T) {
	buf := make([]byte, 0, 64)
	buf = AppendLower(buf, "MiXeD 123")
	if string(buf) != "mixed 123" {
		t.Fatalf("got %q", buf)
	}
	buf = AppendLower(buf[:0], "Łódź")
	if string(buf) != strings.ToLower("Łódź") {
		t.Fatalf("unicode fallback: got %q", buf)
	}
}

// TestInternConcurrentHammer drives many goroutines through a shared table
// with overlapping vocabularies; run under -race this exercises the shard
// locking. Every goroutine must observe exactly one canonical pointer per
// distinct string.
func TestInternConcurrentHammer(t *testing.T) {
	tab := NewTable()
	const (
		goroutines = 16
		words      = 256
		rounds     = 200
	)
	vocab := make([]string, words)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("word-%03d", i)
	}
	ptrs := make([][]uintptr, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			seen := make([]uintptr, words)
			for r := 0; r < rounds; r++ {
				for i, w := range vocab {
					// Rebuild the string so distinct allocations race to
					// intern the same content.
					got := tab.Intern(w[:5] + w[5:])
					if got != w {
						t.Errorf("intern corrupted %q -> %q", w, got)
						return
					}
					p := dataPtr(got)
					if seen[i] == 0 {
						seen[i] = p
					} else if seen[i] != p {
						t.Errorf("canonical pointer for %q changed", w)
						return
					}
					if r%3 == 0 {
						_ = Lower(strings.ToUpper(w))
					}
				}
			}
			ptrs[g] = seen
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if tab.Len() != words {
		t.Fatalf("table has %d entries, want %d", tab.Len(), words)
	}
	for g := 1; g < goroutines; g++ {
		for i := range vocab {
			if ptrs[0][i] != ptrs[g][i] {
				t.Fatalf("goroutines 0 and %d disagree on canonical copy of %q", g, vocab[i])
			}
		}
	}
}

func BenchmarkInternHit(b *testing.B) {
	tab := NewTable()
	tab.Intern("Brad Pitt")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab.Intern("Brad Pitt")
	}
}

func BenchmarkLowerHit(b *testing.B) {
	Lower("Angelina Jolie")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Lower("Angelina Jolie")
	}
}
