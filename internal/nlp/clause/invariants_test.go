package clause

import (
	"testing"

	"qkbfly/internal/corpus"
	"qkbfly/internal/nlp"
	"qkbfly/internal/nlp/depparse"
)

// TestCorpusWideInvariants runs the full pipeline over every sentence of
// the small world's datasets and checks the structural invariants that
// every downstream stage relies on:
//
//  1. exactly one dependency root per sentence, no cycles;
//  2. chunks are non-overlapping with in-range heads;
//  3. mentions have valid spans and TIME mentions carry a value;
//  4. every clause constituent's span and head are within bounds, the
//     head lies inside the span, and the pattern is non-empty.
func TestCorpusWideInvariants(t *testing.T) {
	w := corpus.NewWorld(corpus.SmallConfig())
	p := NewPipeline(w.Repo, depparse.Malt)

	var docs []*nlp.Document
	docs = append(docs, corpus.Docs(w.WikiDataset(25))...)
	docs = append(docs, corpus.Docs(w.NewsDataset(1))...)
	docs = append(docs, corpus.Docs(w.WikiaDataset(w.Config.WikiaPages))...)

	sentences, clauses := 0, 0
	for _, doc := range docs {
		clausesBySent := p.AnnotateDocument(doc)
		for si := range doc.Sentences {
			sent := &doc.Sentences[si]
			sentences++
			checkTree(t, doc.ID, sent)
			checkChunks(t, doc.ID, sent)
			checkMentions(t, doc.ID, sent)
			for i := range clausesBySent[si] {
				clauses++
				checkClause(t, doc.ID, sent, &clausesBySent[si][i])
			}
			if t.Failed() {
				t.Fatalf("invariant violated in %s sentence %d: %q", doc.ID, si, sent.Text)
			}
		}
	}
	if sentences < 200 || clauses < 150 {
		t.Errorf("coverage too small: %d sentences, %d clauses", sentences, clauses)
	}
}

func checkTree(t *testing.T, docID string, sent *nlp.Sentence) {
	t.Helper()
	roots := 0
	for i := range sent.Tokens {
		h := sent.Tokens[i].Head
		if h == -1 {
			roots++
			continue
		}
		if h < 0 || h >= len(sent.Tokens) {
			t.Errorf("%s: token %d head %d out of range", docID, i, h)
		}
		// cycle check
		seen := map[int]bool{}
		j := i
		for j >= 0 {
			if seen[j] {
				t.Errorf("%s: dependency cycle at token %d", docID, i)
				return
			}
			seen[j] = true
			j = sent.Tokens[j].Head
		}
	}
	if len(sent.Tokens) > 0 && roots != 1 {
		t.Errorf("%s: %d roots", docID, roots)
	}
}

func checkChunks(t *testing.T, docID string, sent *nlp.Sentence) {
	t.Helper()
	prevEnd := 0
	for _, c := range sent.Chunks {
		if c.Start < prevEnd || c.End > len(sent.Tokens) || c.Start >= c.End {
			t.Errorf("%s: bad chunk [%d,%d)", docID, c.Start, c.End)
		}
		if c.Head < c.Start || c.Head >= c.End {
			t.Errorf("%s: chunk head %d outside [%d,%d)", docID, c.Head, c.Start, c.End)
		}
		prevEnd = c.End
	}
}

func checkMentions(t *testing.T, docID string, sent *nlp.Sentence) {
	t.Helper()
	for _, m := range sent.Mentions {
		if m.Start < 0 || m.End > len(sent.Tokens) || m.Start >= m.End {
			t.Errorf("%s: bad mention span [%d,%d)", docID, m.Start, m.End)
		}
		if m.Type == nlp.NERTime && m.TimeValue == "" {
			t.Errorf("%s: TIME mention %q without value", docID, m.Text)
		}
		if m.Text == "" {
			t.Errorf("%s: empty mention text", docID)
		}
	}
}

func checkClause(t *testing.T, docID string, sent *nlp.Sentence, c *Clause) {
	t.Helper()
	if c.Pattern == "" {
		t.Errorf("%s: clause with empty pattern", docID)
	}
	if c.Verb < 0 || c.Verb >= len(sent.Tokens) {
		t.Errorf("%s: clause verb %d out of range", docID, c.Verb)
	}
	for _, arg := range c.Args() {
		if arg.Start < 0 || arg.End > len(sent.Tokens) || arg.Start >= arg.End {
			t.Errorf("%s: constituent span [%d,%d) invalid", docID, arg.Start, arg.End)
		}
		if arg.Head < arg.Start || arg.Head >= arg.End {
			t.Errorf("%s: constituent head %d outside [%d,%d)", docID, arg.Head, arg.Start, arg.End)
		}
	}
	switch c.Type {
	case SV, SVA, SVC, SVO, SVOO, SVOA, SVOC:
	default:
		t.Errorf("%s: unknown clause type %q", docID, c.Type)
	}
}
