package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qkbfly"
	"qkbfly/internal/analytics"
	"qkbfly/internal/corpus"
	"qkbfly/internal/engine"
	"qkbfly/internal/kb/store"
	"qkbfly/internal/nlp"
	"qkbfly/internal/sched"
	"qkbfly/internal/stats"
)

// IngestUnderAnalyticsLoad: the headline claim of the maintenance
// subsystem is that ingest tail latency is independent of concurrent
// analytical and compaction load, because ingest only appends a run and
// publishes — compaction happens off-path over immutable snapshots, and
// analytics fold deltas instead of scanning. The benchmark measures
// per-slide ingest latency (p50/p99) in a steady-state sliding-window
// session twice over the same prebuilt segments:
//
//   - unloaded: the classic inline-compaction session, nothing else running;
//   - loaded: deferred compaction with the scheduler compacting and
//     prewarming behind every publish, the analytics tracker folding every
//     delta, and saturating full-scan analytics recomputes hammering
//     snapshots from NumCPU/2 goroutines throughout.
//
// Gates: background work must actually have happened (adopted
// compactions, folded deltas, completed recomputes all > 0), the loaded
// session's final KB must fingerprint-match the unloaded one, and loaded
// p99 must stay within 1.5x of unloaded p99 (plus a fixed 250µs grace so
// the gate is meaningful on machines where a slide costs microseconds
// and one scheduler tick would otherwise fail it). The latency gate only
// applies with GOMAXPROCS >= 2 (latency_gated in the JSON): on a single
// CPU, "concurrent" load serializes with ingest by definition, so the
// ratio is reported but cannot fail the run.
type UnderLoadResult struct {
	Window             int     `json:"window"`
	Slides             int     `json:"slides"`
	P50UnloadedNs      int64   `json:"p50_unloaded_ns"`
	P99UnloadedNs      int64   `json:"p99_unloaded_ns"`
	P50LoadedNs        int64   `json:"p50_loaded_ns"`
	P99LoadedNs        int64   `json:"p99_loaded_ns"`
	P99Ratio           float64 `json:"p99_ratio"`
	LatencyGated       bool    `json:"latency_gated"`
	CompactionsAdopted int64   `json:"compactions_adopted"`
	AnalyticsApplied   int64   `json:"analytics_deltas_applied"`
	LoadRecomputes     int64   `json:"load_recomputes"`
	FingerprintsMatch  bool    `json:"fingerprints_match"`
}

// underLoadGraceNS absorbs scheduler-tick and GC jitter that dominates
// p99 when a single slide costs only microseconds.
const underLoadGraceNS = 250_000

func measureIngestUnderLoad(ctx context.Context, sys *qkbfly.System, w *corpus.World, window, slides, effPar int) (UnderLoadResult, error) {
	total := window + slides
	docs, err := slidingDocs(w, total)
	if err != nil {
		return UnderLoadResult{}, err
	}
	shards, _, err := sys.BuildShardsContext(ctx, docs, qkbfly.WithParallelism(effPar))
	if err != nil {
		return UnderLoadResult{}, err
	}
	ids := make([]string, len(docs))
	for i, d := range docs {
		ids[i] = d.ID
	}
	segs := engine.SealShards(shards, ids, nil)
	builder := &prebuiltBuilder{
		segs:   make(map[string]*store.Segment, total),
		shards: make(map[string]*store.KB, total),
	}
	for i, id := range ids {
		builder.segs[id] = segs[i]
		builder.shards[id] = shards[i]
	}

	// runPass drives one steady-state session through `slides` measured
	// single-document slides and returns the per-slide latencies and the
	// final KB fingerprint. attach returns (ready, detach): ready blocks
	// until the background load is demonstrably running, so the timed
	// region never starts before the load does.
	runPass := func(opts qkbfly.SessionOptions, attach func(*qkbfly.Session) (func(), func())) ([]int64, string, error) {
		sess := qkbfly.Open(builder, opts)
		defer sess.Close()
		ready, detach := func() {}, func() {}
		if attach != nil {
			ready, detach = attach(sess)
		}
		defer detach()
		ingest := func(i int) error {
			_, _, err := sess.Ingest(ctx, []*nlp.Document{{ID: ids[i]}})
			return err
		}
		for i := 0; i < window; i++ {
			if err := ingest(i); err != nil {
				return nil, "", err
			}
		}
		ready()
		lat := make([]int64, 0, slides)
		for i := window; i < total; i++ {
			t0 := time.Now()
			if err := ingest(i); err != nil {
				return nil, "", err
			}
			lat = append(lat, time.Since(t0).Nanoseconds())
		}
		detach() // settle background work before fingerprinting
		return lat, sess.Snapshot().Fingerprint(), nil
	}

	// Pass 1: inline compaction, no background anything.
	unloaded, fpUnloaded, err := runPass(qkbfly.SessionOptions{MaxDocuments: window}, nil)
	if err != nil {
		return UnderLoadResult{}, err
	}

	// Pass 2: deferred compaction with the full maintenance stack running
	// and saturating full-scan recomputes on top.
	cs := stats.NewCounterSet()
	var recomputes atomic.Int64
	attach := func(sess *qkbfly.Session) (func(), func()) {
		sc := sched.New(sched.Options{Workers: 2, Counters: cs})
		m := qkbfly.NewMaintainer(sess, sc, qkbfly.MaintainerOptions{
			MinLooseRuns: 2,
			Prewarm:      true,
			Counters:     cs,
		})
		tr := qkbfly.NewAnalyticsTracker(sess, qkbfly.AnalyticsOptions{Counters: cs})
		stop := make(chan struct{})
		firstScan := make(chan struct{})
		var scanOnce sync.Once
		var wg sync.WaitGroup
		loaders := runtime.GOMAXPROCS(0) / 2
		if loaders < 1 {
			loaders = 1
		}
		for l := 0; l < loaders; l++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					snap := sess.Snapshot()
					_ = analytics.Compute(snap.KB(), snap.Version())
					recomputes.Add(1)
					scanOnce.Do(func() { close(firstScan) })
				}
			}()
		}
		ready := func() { <-firstScan }
		var once sync.Once
		detach := func() {
			once.Do(func() {
				close(stop)
				wg.Wait()
				sc.Drain()
				m.Close()
				tr.Close()
				sc.Close()
			})
		}
		return ready, detach
	}
	loaded, fpLoaded, err := runPass(qkbfly.SessionOptions{
		MaxDocuments:    window,
		DeferCompaction: true,
		Counters:        cs,
	}, attach)
	if err != nil {
		return UnderLoadResult{}, err
	}

	res := UnderLoadResult{
		Window:             window,
		Slides:             slides,
		P50UnloadedNs:      percentileNS(unloaded, 50),
		P99UnloadedNs:      percentileNS(unloaded, 99),
		P50LoadedNs:        percentileNS(loaded, 50),
		P99LoadedNs:        percentileNS(loaded, 99),
		CompactionsAdopted: cs.Get(qkbfly.CounterMaintCompactions),
		AnalyticsApplied:   cs.Get(qkbfly.CounterAnalyticsApplied),
		LoadRecomputes:     recomputes.Load(),
		LatencyGated:       runtime.GOMAXPROCS(0) >= 2,
		FingerprintsMatch:  fpLoaded == fpUnloaded,
	}
	if res.P99UnloadedNs > 0 {
		res.P99Ratio = float64(res.P99LoadedNs) / float64(res.P99UnloadedNs)
	}
	return res, nil
}

// gateUnderLoad enforces the benchmark's acceptance criteria.
func gateUnderLoad(r UnderLoadResult) error {
	if !r.FingerprintsMatch {
		return fmt.Errorf("ingest-under-load: loaded session KB diverged from the unloaded reference")
	}
	if r.CompactionsAdopted == 0 {
		return fmt.Errorf("ingest-under-load: no background compactions were adopted; the load side measured nothing")
	}
	if r.AnalyticsApplied == 0 {
		return fmt.Errorf("ingest-under-load: no analytic deltas folded; the load side measured nothing")
	}
	if r.LoadRecomputes == 0 {
		return fmt.Errorf("ingest-under-load: the saturating recompute loop never completed a scan")
	}
	if !r.LatencyGated {
		fmt.Fprintf(os.Stderr, "under-load: single CPU; p99 ratio %.2fx reported but not gated (concurrent load serializes with ingest)\n", r.P99Ratio)
		return nil
	}
	if limit := int64(1.5*float64(r.P99UnloadedNs)) + underLoadGraceNS; r.P99LoadedNs > limit {
		return fmt.Errorf("ingest-under-load: p99 %.1fµs under load vs %.1fµs unloaded (%.2fx; need <= 1.5x + %.0fµs grace)",
			float64(r.P99LoadedNs)/1e3, float64(r.P99UnloadedNs)/1e3, r.P99Ratio, float64(underLoadGraceNS)/1e3)
	}
	return nil
}

// percentileNS is the nearest-rank percentile of a latency sample.
func percentileNS(ns []int64, pct int) int64 {
	if len(ns) == 0 {
		return 0
	}
	s := append([]int64(nil), ns...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := (pct*len(s) + 99) / 100 // ceil
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}
