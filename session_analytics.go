package qkbfly

import (
	"context"
	"fmt"
	"sync"

	"qkbfly/internal/analytics"
	"qkbfly/internal/stats"
)

// Counter names an AnalyticsTracker records into AnalyticsOptions.Counters.
const (
	CounterAnalyticsApplied = "analytics_deltas_applied"
	CounterAnalyticsResyncs = "analytics_resyncs"
	CounterAnalyticsDrops   = "analytics_watch_drops"
)

// AnalyticsOptions configure an AnalyticsTracker.
type AnalyticsOptions struct {
	// GrowthLimit bounds the retained per-version growth records
	// (analytics.State); <= 0 means 256.
	GrowthLimit int
	// WatchBuffer is each analytics subscriber channel's capacity; <= 0
	// means 256. Lagging subscribers are dropped, like session watchers.
	WatchBuffer int
	// Counters, when non-nil, receives the analytics_* accounting.
	Counters *stats.CounterSet
}

// AnalyticsTracker maintains incremental analytical aggregates for one
// session — entity/fact distributions, per-predicate confidence
// histograms, per-document contributions, growth over versions — folded
// from the session's delta stream instead of scanning snapshots. Folding
// a version costs O(|delta|); the /analytics endpoint therefore answers
// from state that is already current, independent of corpus size.
//
// The tracker subscribes via WatchDeltas before seeding from the current
// snapshot, so no version falls in a gap. If its subscription is ever
// dropped for lagging (or a fold detects divergence), it resynchronizes
// by full recompute over the then-current snapshot and resumes folding —
// correctness never depends on the stream staying healthy, only freshness
// does. Growth history restarts empty after a resync (it cannot be
// reconstructed from one version).
type AnalyticsTracker struct {
	s      *Session
	opt    AnalyticsOptions
	cancel context.CancelFunc
	done   chan struct{}

	mu        sync.Mutex
	st        *analytics.State
	summary   *analytics.Summary // cached; invalidated on every fold
	contentID string             // snapshot ContentID at st's version
	subs      map[int]chan analytics.VersionDelta
	nextSub   int
	closed    bool
}

// NewAnalyticsTracker starts incremental analytics over a session. The
// returned tracker owns a background goroutine; Close it before (or
// after) closing the session.
func NewAnalyticsTracker(s *Session, opt AnalyticsOptions) *AnalyticsTracker {
	if opt.WatchBuffer <= 0 {
		opt.WatchBuffer = 256
	}
	ctx, cancel := context.WithCancel(context.Background())
	t := &AnalyticsTracker{
		s:      s,
		opt:    opt,
		cancel: cancel,
		done:   make(chan struct{}),
		subs:   make(map[int]chan analytics.VersionDelta),
	}
	// Subscribe before seeding: every version published after the seed
	// snapshot is either <= the seed (skipped) or arrives on ch — no gap.
	ch := s.WatchDeltas(ctx)
	snap := s.Snapshot()
	t.st = analytics.FromKB(snap.KB(), snap.Version(), opt.GrowthLimit)
	t.contentID = cacheKeyOf(snap)
	go t.run(ctx, ch)
	return t
}

// cacheKeyOf derives the analytics cache key for one snapshot: its
// ContentID when the tree's segments carry cache identities (a
// server-backed session), else a version-scoped fallback — unique within
// this session's lifetime, which is all an in-process cache needs.
func cacheKeyOf(snap *Snapshot) string {
	if id := snap.ContentID(); id != "" {
		return id
	}
	return fmt.Sprintf("\x00v%d", snap.Version())
}

func (t *AnalyticsTracker) count(name string, d int64) {
	if t.opt.Counters != nil {
		t.opt.Counters.Add(name, d)
	}
}

// run is the tracker's fold loop: drain the delta stream, and on a lag
// drop resubscribe and resync. Exits when the context is cancelled or
// the session closes.
func (t *AnalyticsTracker) run(ctx context.Context, ch <-chan DeltaEvent) {
	defer close(t.done)
	for {
		for ev := range ch {
			t.fold(&ev)
		}
		// Channel closed: session shutdown, tracker Close, or a lag drop.
		if ctx.Err() != nil || t.s.isClosed() {
			return
		}
		t.count(CounterAnalyticsDrops, 1)
		ch = t.s.WatchDeltas(ctx)
		t.count(CounterAnalyticsResyncs, 1)
		t.resync(t.s.Snapshot())
	}
}

// fold applies one published version. Stale events are skipped (they
// precede a resync); gaps and divergence trigger a resync from the
// event's own snapshot.
func (t *AnalyticsTracker) fold(ev *DeltaEvent) {
	t.mu.Lock()
	if ev.Version <= t.st.Version() {
		t.mu.Unlock()
		return
	}
	if ev.Version == t.st.Version()+1 {
		vd, err := t.st.Apply(ev.Version, &ev.Delta)
		if err == nil {
			t.summary = nil
			t.contentID = cacheKeyOf(ev.Snap)
			t.notifyLocked(vd)
			t.mu.Unlock()
			t.count(CounterAnalyticsApplied, 1)
			return
		}
	}
	t.mu.Unlock()
	t.count(CounterAnalyticsResyncs, 1)
	t.resync(ev.Snap)
}

// resync rebuilds the state by full recompute over a snapshot — the
// recovery path, and the reference the property test holds folding to.
// The recompute runs off the tracker lock (it materializes the KB).
func (t *AnalyticsTracker) resync(snap *Snapshot) {
	st := analytics.FromKB(snap.KB(), snap.Version(), t.opt.GrowthLimit)
	id := cacheKeyOf(snap)
	t.mu.Lock()
	if snap.Version() >= t.st.Version() {
		t.st = st
		t.summary = nil
		t.contentID = id
	}
	t.mu.Unlock()
}

// notifyLocked fans one analytic delta out to subscribers, dropping any
// that lag a full buffer behind. Callers hold t.mu.
func (t *AnalyticsTracker) notifyLocked(vd analytics.VersionDelta) {
	for id, ch := range t.subs {
		select {
		case ch <- vd:
		default:
			delete(t.subs, id)
			close(ch)
		}
	}
}

// Version returns the session version the tracker has folded up to.
func (t *AnalyticsTracker) Version() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.st.Version()
}

// Summary returns the aggregate view of the tracker's current version,
// the snapshot ContentID it corresponds to, and whether the summary was
// served from the per-version cache (false means this call computed and
// cached it). The ContentID keys HTTP caching: two requests seeing the
// same ID received byte-identical analytics.
func (t *AnalyticsTracker) Summary() (sum *analytics.Summary, contentID string, cached bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.summary != nil {
		return t.summary, t.contentID, true
	}
	t.summary = t.st.Summary()
	return t.summary, t.contentID, false
}

// Growth returns the retained per-version analytic deltas, oldest first.
func (t *AnalyticsTracker) Growth() []analytics.VersionDelta {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.st.Growth()
}

// WatchAnalytics subscribes to per-version analytic deltas as they fold
// — the live tail of /analytics?follow=. The channel closes when ctx is
// cancelled, the tracker closes, or the subscriber lags a full buffer
// behind.
func (t *AnalyticsTracker) WatchAnalytics(ctx context.Context) <-chan analytics.VersionDelta {
	t.mu.Lock()
	defer t.mu.Unlock()
	ch := make(chan analytics.VersionDelta, t.opt.WatchBuffer)
	if t.closed {
		close(ch)
		return ch
	}
	id := t.nextSub
	t.nextSub++
	t.subs[id] = ch
	context.AfterFunc(ctx, func() {
		t.mu.Lock()
		defer t.mu.Unlock()
		if c, ok := t.subs[id]; ok {
			delete(t.subs, id)
			close(c)
		}
	})
	return ch
}

// Close stops the tracker: the fold loop exits, subscriber channels
// close, and the final state remains readable (Summary/Growth/Version
// keep answering). Idempotent.
func (t *AnalyticsTracker) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		<-t.done
		return
	}
	t.closed = true
	for id, ch := range t.subs {
		delete(t.subs, id)
		close(ch)
	}
	t.mu.Unlock()
	t.cancel()
	<-t.done
}
