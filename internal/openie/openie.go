// Package openie implements the Open IE systems compared in Table 5:
// the ClausIE-based extractor in its original (Stanford-parser) and
// QKBfly (MaltParser) configurations, a Reverb-style pattern extractor
// that uses no parsing at all, and Ollie- and OpenIE-4.2-style extractors.
// All of them produce uncanonicalized surface triples (or n-ary
// extractions for the clause-based ones).
package openie

import (
	"strings"

	"qkbfly/internal/nlp"
	"qkbfly/internal/nlp/chunk"
	"qkbfly/internal/nlp/clause"
	"qkbfly/internal/nlp/depparse"
	"qkbfly/internal/nlp/lemma"
	"qkbfly/internal/nlp/ner"
	"qkbfly/internal/nlp/pos"
	"qkbfly/internal/nlp/token"
)

// Extraction is one uncanonicalized Open IE proposition.
type Extraction struct {
	Subject   string
	Relation  string   // surface relation phrase (lemmatized verb + preps)
	Objects   []string // one or more arguments
	SentIndex int
}

// Extractor is one Open IE system.
type Extractor interface {
	Name() string
	// ExtractSentence processes one raw sentence.
	ExtractSentence(text string, index int) []Extraction
}

// ---------------------------------------------------------------------------
// Clause-based extractors (ClausIE original and QKBfly's component)
// ---------------------------------------------------------------------------

// ClauseExtractor is the ClausIE-style extractor. Mode selects the parser:
// depparse.Stanford reproduces the original ClausIE configuration (slow),
// depparse.Malt the QKBfly modification (§2.1).
type ClauseExtractor struct {
	name string
	pipe *clause.Pipeline
	// TriplesOnly truncates n-ary extractions to binary triples
	// (the OpenIE-4.2-style configuration).
	TriplesOnly bool
	// NonVerbal adds ClausIE's non-verb-mediated propositions
	// (possessives and appositions), raising yield.
	NonVerbal bool
}

// NewClausIE returns the original ClausIE configuration (Stanford parser,
// including the non-verbal proposition patterns).
func NewClausIE(gaz ner.Gazetteer) *ClauseExtractor {
	return &ClauseExtractor{name: "ClausIE", pipe: clause.NewPipeline(gaz, depparse.Stanford), NonVerbal: true}
}

// NewQKBflyOpenIE returns QKBfly's Open IE component (MaltParser).
func NewQKBflyOpenIE(gaz ner.Gazetteer) *ClauseExtractor {
	return &ClauseExtractor{name: "QKBfly", pipe: clause.NewPipeline(gaz, depparse.Malt)}
}

// NewOpenIE42 returns the OpenIE-4.2-style configuration: dependency
// parsing with the fast parser, triples only, slightly stricter filters.
func NewOpenIE42(gaz ner.Gazetteer) *ClauseExtractor {
	return &ClauseExtractor{name: "Open IE 4.2", pipe: clause.NewPipeline(gaz, depparse.Malt), TriplesOnly: true}
}

// Name implements Extractor.
func (e *ClauseExtractor) Name() string { return e.name }

// ExtractSentence implements Extractor.
func (e *ClauseExtractor) ExtractSentence(text string, index int) []Extraction {
	sent, clauses := e.pipe.AnnotateSentence(text, index)
	var out []Extraction
	for i := range clauses {
		c := &clauses[i]
		if c.Subject == nil || c.Negated {
			continue
		}
		subj := sent.TokenText(c.Subject.Start, c.Subject.End)
		var objs []string
		for _, arg := range c.Args() {
			if arg.Role == clause.RoleSubject {
				continue
			}
			objs = append(objs, sent.TokenText(arg.Start, arg.End))
		}
		if len(objs) == 0 {
			continue
		}
		if e.TriplesOnly {
			objs = objs[:1]
		}
		out = append(out, Extraction{
			Subject: subj, Relation: c.Pattern, Objects: objs, SentIndex: index,
		})
	}
	if e.NonVerbal {
		out = append(out, nonVerbalExtractions(&sent, index)...)
	}
	return out
}

// nonVerbalExtractions yields possessive and apposition propositions.
func nonVerbalExtractions(sent *nlp.Sentence, index int) []Extraction {
	var out []Extraction
	for i := range sent.Tokens {
		switch sent.Tokens[i].DepRel {
		case nlp.DepPoss:
			head := sent.Tokens[i].Head
			if head < 0 {
				continue
			}
			var relNoun string
			for k := i + 1; k < head; k++ {
				if sent.Tokens[k].POS == nlp.NN || sent.Tokens[k].POS == nlp.NNS {
					relNoun = sent.Tokens[k].Lemma
				}
			}
			if relNoun == "" {
				continue
			}
			out = append(out, Extraction{
				Subject: sent.Tokens[i].Text, Relation: relNoun,
				Objects: []string{sent.Tokens[head].Text}, SentIndex: index,
			})
		case nlp.DepAppos:
			if h := sent.Tokens[i].Head; h >= 0 {
				out = append(out, Extraction{
					Subject: sent.Tokens[h].Text, Relation: "be",
					Objects: []string{sent.Tokens[i].Text}, SentIndex: index,
				})
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Reverb: POS-pattern extractor, no parsing
// ---------------------------------------------------------------------------

// Reverb implements the Reverb-style extractor [Fader et al. 2011]: a
// verb (+ optional particles/prepositions) pattern between two noun
// phrases, using only tokenization, POS tagging and chunking.
type Reverb struct{}

// NewReverb returns the Reverb-style extractor.
func NewReverb() *Reverb { return &Reverb{} }

// Name implements Extractor.
func (r *Reverb) Name() string { return "Reverb" }

// ExtractSentence implements Extractor.
func (r *Reverb) ExtractSentence(text string, index int) []Extraction {
	sent := nlp.Sentence{Index: index, Text: text, Tokens: token.Tokenize(text)}
	pos.Tag(&sent)
	lemma.Annotate(&sent)
	chunk.Chunk(&sent)
	toks := sent.Tokens
	var out []Extraction
	for i := 0; i < len(toks); i++ {
		if !toks[i].POS.IsVerb() {
			continue
		}
		// Relation phrase: V (RB|IN|TO)* — greedy to the right.
		j := i + 1
		rel := toks[i].Lemma
		for j < len(toks) && (toks[j].POS == nlp.IN || toks[j].POS == nlp.TO) {
			rel += " " + strings.ToLower(toks[j].Text)
			j++
		}
		// Left NP: the chunk ending right before i (skipping adverbs/aux).
		left := lastChunkBefore(&sent, i)
		right := firstChunkAt(&sent, j)
		if left < 0 || right < 0 {
			continue
		}
		lc, rc := sent.Chunks[left], sent.Chunks[right]
		out = append(out, Extraction{
			Subject:   sent.TokenText(lc.Start, lc.End),
			Relation:  rel,
			Objects:   []string{sent.TokenText(rc.Start, rc.End)},
			SentIndex: index,
		})
		i = j
	}
	return out
}

func lastChunkBefore(sent *nlp.Sentence, i int) int {
	best := -1
	for ci, c := range sent.Chunks {
		if c.End <= i {
			best = ci
		}
	}
	// Reverb requires adjacency up to auxiliaries/adverbs.
	if best >= 0 {
		for k := sent.Chunks[best].End; k < i; k++ {
			p := sent.Tokens[k].POS
			if !(p == nlp.RB || p == nlp.MD || p.IsVerb()) {
				return -1
			}
		}
	}
	return best
}

func firstChunkAt(sent *nlp.Sentence, j int) int {
	for ci, c := range sent.Chunks {
		if c.Start == j {
			return ci
		}
	}
	return -1
}

// ---------------------------------------------------------------------------
// Ollie: dependency patterns with relaxed filters
// ---------------------------------------------------------------------------

// Ollie implements an Ollie-style extractor [Mausam et al. 2012]: it uses
// the fast dependency parser and extracts from a wider, noisier set of
// patterns than the clause-based systems (including apposition and
// possessive patterns), trading precision for coverage.
type Ollie struct {
	pipe *clause.Pipeline
}

// NewOllie returns the Ollie-style extractor.
func NewOllie(gaz ner.Gazetteer) *Ollie {
	return &Ollie{pipe: clause.NewPipeline(gaz, depparse.Malt)}
}

// Name implements Extractor.
func (o *Ollie) Name() string { return "Ollie" }

// ExtractSentence implements Extractor.
func (o *Ollie) ExtractSentence(text string, index int) []Extraction {
	sent, clauses := o.pipe.AnnotateSentence(text, index)
	var out []Extraction
	// Clause triples, including subject-less ones with a recovered dummy
	// subject (Ollie's aggressive recall).
	for i := range clauses {
		c := &clauses[i]
		subj := ""
		if c.Subject != nil {
			subj = sent.TokenText(c.Subject.Start, c.Subject.End)
		}
		for _, arg := range c.Args() {
			if arg.Role == clause.RoleSubject {
				continue
			}
			if subj == "" {
				continue
			}
			rel := c.Pattern
			if arg.Prep != "" && !strings.HasSuffix(rel, arg.Prep) {
				rel = sent.Tokens[c.Verb].Lemma + " " + arg.Prep
			}
			out = append(out, Extraction{
				Subject: subj, Relation: rel,
				Objects:   []string{sent.TokenText(arg.Start, arg.End)},
				SentIndex: index,
			})
		}
	}
	// Possessive pattern: "X's N Y" -> (X, N, Y).
	for i := range sent.Tokens {
		if sent.Tokens[i].DepRel != nlp.DepPoss {
			continue
		}
		head := sent.Tokens[i].Head
		if head < 0 {
			continue
		}
		var relNoun string
		for k := i + 1; k < head; k++ {
			if sent.Tokens[k].POS == nlp.NN || sent.Tokens[k].POS == nlp.NNS {
				relNoun = sent.Tokens[k].Lemma
			}
		}
		if relNoun == "" {
			continue
		}
		out = append(out, Extraction{
			Subject: sent.Tokens[i].Text, Relation: relNoun,
			Objects: []string{sent.Tokens[head].Text}, SentIndex: index,
		})
	}
	// Apposition pattern: "X, the N," -> (X, be, the N).
	for i := range sent.Tokens {
		if sent.Tokens[i].DepRel == nlp.DepAppos && sent.Tokens[i].Head >= 0 {
			out = append(out, Extraction{
				Subject: sent.Tokens[sent.Tokens[i].Head].Text, Relation: "be",
				Objects: []string{sent.Tokens[i].Text}, SentIndex: index,
			})
		}
	}
	return out
}
