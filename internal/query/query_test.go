package query

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"qkbfly/internal/kb/store"
)

// --- randomized corpus ---------------------------------------------------

// randValue draws from a small closed vocabulary so joins actually hit.
func randValue(rng *rand.Rand) store.Value {
	if rng.Intn(2) == 0 {
		return store.Value{EntityID: fmt.Sprintf("E%d", rng.Intn(8))}
	}
	return store.Value{Literal: fmt.Sprintf("lit%d", rng.Intn(6))}
}

func randFact(rng *rand.Rand, doc string, sent int) store.Fact {
	f := store.Fact{
		Subject:    randValue(rng),
		Relation:   fmt.Sprintf("rel%d", rng.Intn(4)),
		Confidence: float64(rng.Intn(10)) / 10,
		Source:     store.Provenance{DocID: doc, SentIndex: sent},
		Pattern:    fmt.Sprintf("p%d", rng.Intn(3)),
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		f.Objects = append(f.Objects, randValue(rng))
	}
	return f
}

// randTree builds a multi-run tree of nSegs sealed random shards.
func randTree(rng *rand.Rand, nSegs int) *store.Tree {
	t := store.NewTree(nil)
	for s := 0; s < nSegs; s++ {
		kb := store.New()
		doc := fmt.Sprintf("doc%d", s)
		for i, n := 0, 4+rng.Intn(12); i < n; i++ {
			kb.AddFact(randFact(rng, doc, i))
		}
		t = t.Push(store.SealSegment(kb, doc), uint64(s))
	}
	return t
}

// randTerm draws a term for one clause position; vars come from a tiny
// shared pool so multi-clause patterns join.
func randTerm(rng *rand.Rand, predicate bool) Term {
	switch rng.Intn(5) {
	case 0:
		return Wildcard()
	case 1, 2:
		return Var(fmt.Sprintf("v%d", rng.Intn(3)))
	default:
		if predicate {
			return Literal(fmt.Sprintf("rel%d", rng.Intn(4)))
		}
		return Literal(fmt.Sprintf("lit%d", rng.Intn(6)))
	}
}

func randPattern(rng *rand.Rand) *Pattern {
	p := &Pattern{Tau: []float64{0, 0.3, 0.6}[rng.Intn(3)]}
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		c := Clause{
			Subject:   randTerm(rng, false),
			Predicate: randTerm(rng, true),
			Object:    randTerm(rng, false),
		}
		if rng.Intn(2) == 0 {
			c.Subject = Entity(fmt.Sprintf("E%d", rng.Intn(8)))
		}
		p.Clauses = append(p.Clauses, c)
	}
	return p
}

func rowKeys(rows []Row) []string {
	if len(rows) == 0 {
		return nil
	}
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = r.Key()
	}
	sort.Strings(keys)
	return keys
}

// --- engine vs reference -------------------------------------------------

// TestRunMatchesScanReference is the byte-identity property: for random
// trees and random patterns, the streaming engine's answer set equals
// filtering the materialized KB with the same pattern and τ.
func TestRunMatchesScanReference(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(900 + seed))
		tree := randTree(rng, 1+rng.Intn(6))
		kb := tree.Materialize()
		for q := 0; q < 8; q++ {
			p := randPattern(rng)
			rows, err := Run(tree, p)
			if err != nil {
				t.Fatalf("seed %d: Run: %v", seed, err)
			}
			got := rowKeys(rows.Collect())
			want := rowKeys(ScanKB(kb, p))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d pattern %q tau=%g:\nengine    %v\nreference %v",
					seed, p.String(), p.Tau, got, want)
			}
		}
	}
}

// TestRunSupportingFacts: every emitted row's supporting facts actually
// satisfy their clauses under the row's bindings and pass τ.
func TestRunSupportingFacts(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tree := randTree(rng, 4)
	for q := 0; q < 20; q++ {
		p := randPattern(rng)
		rows, err := Run(tree, p)
		if err != nil {
			t.Fatal(err)
		}
		for {
			row, ok := rows.Next()
			if !ok {
				break
			}
			if len(row.Facts) != len(p.Clauses) {
				t.Fatalf("row has %d facts for %d clauses", len(row.Facts), len(p.Clauses))
			}
			for ci, c := range p.Clauses {
				f := row.Facts[ci]
				if f.Confidence < p.Tau {
					t.Fatalf("clause %d fact below tau: %v", ci, f)
				}
				if len(clauseMatches(c, f, row.Bindings)) == 0 {
					t.Fatalf("clause %d fact %s does not satisfy bindings %v", ci, f.String(), row.Bindings)
				}
			}
		}
	}
}

// --- fixtures ------------------------------------------------------------

func fixtureTree(t *testing.T) *store.Tree {
	t.Helper()
	kb := store.New()
	add := func(subj store.Value, rel string, conf float64, objs ...store.Value) {
		kb.AddFact(store.Fact{Subject: subj, Relation: rel, Objects: objs,
			Confidence: conf, Source: store.Provenance{DocID: "d", SentIndex: kb.Len()}})
	}
	e := func(id string) store.Value { return store.Value{EntityID: id} }
	l := func(s string) store.Value { return store.Value{Literal: s} }
	add(e("Ann"), "plays_for", 0.9, e("Orion"))
	add(e("Bob"), "plays_for", 0.5, e("Orion"))
	add(e("Orion"), "based_in", 0.8, l("Lyon"))
	add(e("Ann"), "born_in", 0.7, l("Lyon"), l("1990"))
	add(e("Solo"), "retired", 0.6) // zero objects
	return store.NewTree(nil).Push(store.SealSegment(kb, "d"), 0)
}

func runKeys(t *testing.T, tree *store.Tree, src string, tau float64, limit int) []string {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	p.Tau, p.Limit = tau, limit
	rows, err := Run(tree, p)
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return rowKeys(rows.Collect())
}

func TestRunFixtures(t *testing.T) {
	tree := fixtureTree(t)
	cases := []struct {
		name  string
		src   string
		tau   float64
		limit int
		want  []string
	}{
		{"chain join", "?p plays_for ?team ; ?team based_in ?city", 0, 0,
			[]string{"city=l:Lyon\x01p=e:Ann\x01team=e:Orion", "city=l:Lyon\x01p=e:Bob\x01team=e:Orion"}},
		{"tau filters join", "?p plays_for ?team ; ?team based_in ?city", 0.6, 0,
			[]string{"city=l:Lyon\x01p=e:Ann\x01team=e:Orion"}},
		{"constant subject", "e:Ann plays_for ?t", 0, 0, []string{"t=e:Orion"}},
		{"relation case-insensitive", "e:Ann PLAYS_FOR ?t", 0, 0, []string{"t=e:Orion"}},
		{"literal object case-insensitive", "?s based_in lyon", 0, 0, []string{"s=e:Orion"}},
		{"predicate variable", "e:Ann ?r e:Orion", 0, 0, []string{"r=l:plays_for"}},
		{"object fan-out", "e:Ann born_in ?o", 0, 0, []string{"o=l:1990", "o=l:Lyon"}},
		{"wildcard matches zero objects", "e:Solo ?r _", 0, 0, []string{"r=l:retired"}},
		{"variable needs an object", "e:Solo retired ?o", 0, 0, nil},
		{"boolean query", "e:Orion based_in _", 0, 0, []string{""}},
		{"boolean no match", "e:Orion based_in e:Ann", 0, 0, nil},
		{"distinct rows", "?p plays_for e:Orion ; ?p plays_for ?t", 0, 0,
			[]string{"p=e:Ann\x01t=e:Orion", "p=e:Bob\x01t=e:Orion"}},
		{"limit", "?p plays_for ?t", 0, 1, []string{"p=e:Ann\x01t=e:Orion"}},
		{"shared var subject-object", "?x plays_for ?x", 0, 0, nil},
	}
	for _, tc := range cases {
		got := runKeys(t, tree, tc.src, tc.tau, tc.limit)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: got %q, want %q", tc.name, got, tc.want)
		}
	}
}

// --- parser and canonicalization ----------------------------------------

func TestParse(t *testing.T) {
	p, err := Parse(`?a "plays for" "New York" ; e:E1 rel ?a`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Clauses) != 2 {
		t.Fatalf("parsed %d clauses", len(p.Clauses))
	}
	if got := p.Clauses[0].Predicate.Value.Literal; got != "plays for" {
		t.Fatalf("quoted predicate = %q", got)
	}
	if got := p.Clauses[0].Object.Value.Literal; got != "New York" {
		t.Fatalf("quoted object = %q", got)
	}
	if p.Clauses[1].Subject.Value.EntityID != "E1" {
		t.Fatalf("entity subject = %+v", p.Clauses[1].Subject)
	}
	if p.Clauses[1].Object != Var("a") {
		t.Fatalf("object var = %+v", p.Clauses[1].Object)
	}
	for _, bad := range []string{"", "  ;  ", "a b", "a b c d", "? rel x", `a "unterminated x`} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
	// Newlines separate clauses like semicolons.
	p2, err := Parse("?a rel ?b\n?b rel ?c")
	if err != nil || len(p2.Clauses) != 2 {
		t.Fatalf("newline clauses: %v, %d", err, len(p2.Clauses))
	}
}

func TestCanonical(t *testing.T) {
	a, _ := Parse(`?x Plays_For ?y ; ?y based_in "Lyon"`)
	b, _ := Parse(`?p plays_for ?q ; ?q BASED_IN lyon`)
	if a.Canonical() != b.Canonical() {
		t.Fatalf("alpha-equivalent patterns disagree:\n%q\n%q", a.Canonical(), b.Canonical())
	}
	c, _ := Parse(`?x plays_for ?y ; ?x based_in lyon`) // different join shape
	if a.Canonical() == c.Canonical() {
		t.Fatal("different join shapes share a canonical form")
	}
	d, _ := Parse(`?x plays_for ?y ; ?y based_in lyon`)
	d.Tau = 0.5
	if a.Canonical() == d.Canonical() {
		t.Fatal("tau not folded into canonical form")
	}
}

// --- planner -------------------------------------------------------------

func TestPlanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tree := randTree(rng, 4)
	// An unbound scan clause written first must be deferred behind the
	// constant-subject clause that binds its variable.
	p := &Pattern{Clauses: []Clause{
		{Subject: Var("a"), Predicate: Literal("rel0"), Object: Var("b")},
		{Subject: Entity("E1"), Predicate: Literal("rel1"), Object: Var("a")},
	}}
	plan := PlanQuery(tree, p)
	if !reflect.DeepEqual(plan.Order, []int{1, 0}) {
		t.Fatalf("plan order = %v, want [1 0]", plan.Order)
	}
	if plan.Est[0] > tree.FactCount() {
		t.Fatalf("constant-subject estimate %d exceeds full scan", plan.Est[0])
	}
	// With a seed binding the scan clause becomes a bound-subject probe.
	sub := planClauses(tree, p.Clauses[:1], map[string]bool{"a": true})
	if sub.Est[0] != estBoundSubject {
		t.Fatalf("bound-subject estimate = %d, want %d", sub.Est[0], estBoundSubject)
	}
}

// --- delta evaluation ----------------------------------------------------

// TestEvalDeltaIncrement: for random slides, the delta evaluation yields
// every row that is new in v2 relative to v1, and nothing outside v2.
func TestEvalDeltaIncrement(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(7000 + seed))
		old := randTree(rng, 3)
		kb := store.New()
		for i, n := 0, 6+rng.Intn(8); i < n; i++ {
			kb.AddFact(randFact(rng, "slide", i))
		}
		seg := store.SealSegment(kb, "slide")
		new := old.Push(seg, 99)
		delta := store.DiffTrees(old, new, []*store.Segment{seg})
		for q := 0; q < 6; q++ {
			p := randPattern(rng)
			inc := rowKeys(EvalDelta(new, p, delta))
			oldRows, _ := Run(old, p)
			newRows, _ := Run(new, p)
			oldSet := map[string]bool{}
			for _, k := range rowKeys(oldRows.Collect()) {
				oldSet[k] = true
			}
			newSet := map[string]bool{}
			for _, k := range rowKeys(newRows.Collect()) {
				newSet[k] = true
			}
			incSet := map[string]bool{}
			for _, k := range inc {
				if !newSet[k] {
					t.Fatalf("seed %d pattern %q: delta row %q not in v2", seed, p.String(), k)
				}
				incSet[k] = true
			}
			for k := range newSet {
				if !oldSet[k] && !incSet[k] {
					t.Fatalf("seed %d pattern %q: new row %q missed by delta eval", seed, p.String(), k)
				}
			}
		}
	}
}

func TestEvalDeltaUpgradeCrossesTau(t *testing.T) {
	low := store.New()
	low.AddFact(store.Fact{Subject: store.Value{EntityID: "A"}, Relation: "r",
		Objects: []store.Value{{EntityID: "B"}}, Confidence: 0.2,
		Source: store.Provenance{DocID: "d1"}})
	hi := store.New()
	hi.AddFact(store.Fact{Subject: store.Value{EntityID: "A"}, Relation: "r",
		Objects: []store.Value{{EntityID: "B"}}, Confidence: 0.9,
		Source: store.Provenance{DocID: "d2"}})
	old := store.NewTree(nil).Push(store.SealSegment(low, "d1"), 0)
	seg := store.SealSegment(hi, "d2")
	new := old.Push(seg, 1)
	delta := store.DiffTrees(old, new, []*store.Segment{seg})
	if len(delta.Upgraded) != 1 {
		t.Fatalf("delta = %+v, want one upgrade", delta)
	}
	p, _ := Parse("?x r ?y")
	p.Tau = 0.5
	rows := EvalDelta(new, p, delta)
	if len(rows) != 1 || rows[0].Key() != "x=e:A\x01y=e:B" {
		t.Fatalf("upgrade crossing tau: rows = %v", rowKeys(rows))
	}
}

// --- string form ---------------------------------------------------------

func TestPatternString(t *testing.T) {
	p, err := Parse(`?a "plays for" e:E1 ; _ rel ?b`)
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, frag := range []string{"?a", `"plays for"`, "e:E1", "_", "?b"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() = %q missing %q", s, frag)
		}
	}
	back, err := Parse(s)
	if err != nil {
		t.Fatalf("reparse %q: %v", s, err)
	}
	if back.Canonical() != p.Canonical() {
		t.Fatalf("String() not canonical-stable: %q vs %q", back.Canonical(), p.Canonical())
	}
}

// TestPlanPOSIndexEstimate: a clause with unbound subject but constant
// predicate+object is costed by its POS range, not the full scan, and
// plans ahead of a wider clause over the same tree.
func TestPlanPOSIndexEstimate(t *testing.T) {
	kb := store.New()
	for i := 0; i < 40; i++ {
		kb.AddFact(store.Fact{
			Subject: store.Value{EntityID: fmt.Sprintf("E%d", i)}, Relation: "common",
			Objects: []store.Value{{Literal: fmt.Sprintf("lit%d", i)}}, Confidence: 0.9,
			Source: store.Provenance{DocID: "d", SentIndex: i}})
	}
	kb.AddFact(store.Fact{
		Subject: store.Value{EntityID: "E1"}, Relation: "rare",
		Objects: []store.Value{{Literal: "needle"}}, Confidence: 0.9,
		Source: store.Provenance{DocID: "d", SentIndex: 99}})
	tree := store.NewTree(nil).Push(store.SealSegment(kb, "d"), 0)

	p, err := Parse(`?x common ?y ; ?z rare needle`)
	if err != nil {
		t.Fatal(err)
	}
	plan := PlanQuery(tree, p)
	if plan.Order[0] != 1 {
		t.Fatalf("plan order = %v, want the rare POS-indexed clause first", plan.Order)
	}
	if plan.Est[0] != 1 {
		t.Fatalf("rare-clause estimate = %d, want exactly 1 (POS range width)", plan.Est[0])
	}
	if plan.Est[1] <= 1 {
		t.Fatalf("common-clause estimate = %d, want the wide relation range", plan.Est[1])
	}
}

// TestPlanIndexTieBreakStable: clause permutations of the same pattern
// plan to the same clause sequence even when scores and estimates tie —
// the canonical-string tie-break makes plan shape a function of pattern
// content, not author ordering.
func TestPlanIndexTieBreakStable(t *testing.T) {
	tree := store.NewTree(nil) // empty: every clause estimates equal
	clauses := []Clause{
		{Subject: Var("a"), Predicate: Literal("relC"), Object: Var("b")},
		{Subject: Var("a"), Predicate: Literal("relA"), Object: Var("b")},
		{Subject: Var("a"), Predicate: Literal("relB"), Object: Var("b")},
	}
	render := func(p *Plan, cs []Clause) []string {
		out := make([]string, len(p.Order))
		for i, ci := range p.Order {
			out[i] = clauseKey(cs[ci])
		}
		return out
	}
	base := render(planClauses(tree, clauses, nil), clauses)
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, perm := range perms {
		cs := make([]Clause, len(perm))
		for i, j := range perm {
			cs[i] = clauses[j]
		}
		got := render(planClauses(tree, cs, nil), cs)
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("permutation %v planned %v, base order planned %v", perm, got, base)
		}
	}
	if base[0] != clauseKey(clauses[1]) {
		t.Fatalf("tie-break winner = %q, want lexicographically smallest clause %q",
			base[0], clauseKey(clauses[1]))
	}

	// On a populated tree, randomized patterns must also plan
	// permutation-independently.
	rng := rand.New(rand.NewSource(41))
	popTree := randTree(rng, 3)
	for q := 0; q < 25; q++ {
		p := randPattern(rng)
		if len(p.Clauses) < 2 {
			continue
		}
		want := render(planClauses(popTree, p.Clauses, nil), p.Clauses)
		rev := make([]Clause, len(p.Clauses))
		for i, c := range p.Clauses {
			rev[len(rev)-1-i] = c
		}
		if got := render(planClauses(popTree, rev, nil), rev); !reflect.DeepEqual(got, want) {
			t.Fatalf("pattern %q: reversed clauses planned %v, want %v", p.String(), got, want)
		}
	}
}

// TestExecPOSIndexSelection: a variable-subject clause with a constant
// predicate executes off the POS index (the pos-scan counter moves) and
// still answers exactly the reference rows.
func TestExecPOSIndexSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	tree := randTree(rng, 5)
	kb := tree.Materialize()
	p, err := Parse(`?x rel2 ?y`)
	if err != nil {
		t.Fatal(err)
	}
	pos0, _ := IndexCounters()
	rows, err := Run(tree, p)
	if err != nil {
		t.Fatal(err)
	}
	got := rowKeys(rows.Collect())
	pos1, _ := IndexCounters()
	if pos1 == pos0 {
		t.Fatal("variable-subject constant-predicate clause did not use the POS index")
	}
	if want := rowKeys(ScanKB(kb, p)); !reflect.DeepEqual(got, want) {
		t.Fatalf("POS-indexed answer differs:\nengine    %v\nreference %v", got, want)
	}
}

// TestVerifyRowMaintainsSupport: Verify re-admits a row whose bindings
// still hold (refreshing its evidence to current winners) and rejects a
// binding assignment with no support.
func TestVerifyRowMaintainsSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	tree := randTree(rng, 4)
	p, err := Parse(`?x rel1 ?y`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Run(tree, p)
	if err != nil {
		t.Fatal(err)
	}
	all := rows.Collect()
	if len(all) == 0 {
		t.Skip("fixture produced no rows")
	}
	for _, r := range all {
		vr, ok := Verify(tree, p, r.Bindings)
		if !ok {
			t.Fatalf("valid row %q failed verification", r.Key())
		}
		if vr.Key() != r.Key() {
			t.Fatalf("verification rebound the row: %q vs %q", vr.Key(), r.Key())
		}
		for _, f := range vr.Facts {
			if f.Confidence < p.Tau {
				t.Fatalf("verified row %q cites sub-tau evidence", vr.Key())
			}
		}
	}
	if _, ok := Verify(tree, p, map[string]store.Value{
		"x": {EntityID: "no-such-entity"}, "y": {Literal: "nope"},
	}); ok {
		t.Fatal("unsupported binding assignment verified")
	}
}
