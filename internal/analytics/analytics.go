// Package analytics maintains session-level analytical aggregates —
// entity/fact distributions, per-predicate confidence histograms,
// per-document contribution counts, session growth over versions —
// incrementally from store.Delta streams instead of full scans.
//
// A State is a key-indexed mirror of the facts and entities a session
// version holds, reduced to the handful of fields the aggregates need
// (lowered relation, winning confidence, winning provenance document,
// entity types and emerging flags). Folding one published version's
// Delta costs O(|delta|); the mirror exists so removals and in-place
// upgrades can decrement exactly what they previously contributed —
// the piece of state a pure aggregate could never reconstruct.
//
// The correctness contract (property-tested at the session layer): after
// folding every delta of versions 1..v, State.Summary() is byte-identical
// to Compute over the materialized KB of version v. Both paths build the
// same mirror and run the same summarization in sorted-key order, so
// even the floating-point mean confidences agree exactly.
package analytics

import (
	"fmt"
	"sort"
	"strings"

	"qkbfly/internal/kb/store"
)

// Buckets is the number of confidence-histogram buckets: bucket i holds
// confidences in [i/Buckets, (i+1)/Buckets), with 1.0 clamped into the
// last bucket.
const Buckets = 10

// bucketOf clamps a confidence into its histogram bucket.
func bucketOf(conf float64) int {
	b := int(conf * Buckets)
	if b < 0 {
		return 0
	}
	if b >= Buckets {
		return Buckets - 1
	}
	return b
}

// factMeta is what one live fact contributes to the aggregates.
type factMeta struct {
	rel  string  // lowered relation (the predicate group)
	conf float64 // winning confidence
	doc  string  // winning provenance document
}

// entMeta is what one live entity contributes.
type entMeta struct {
	emerging bool
	types    []string // sorted distinct types
}

// VersionDelta is one published version's analytic delta: the change
// counts it folded plus the running totals after it — the record the
// /analytics?follow= NDJSON stream ships per version.
type VersionDelta struct {
	Version         uint64 `json:"version"`
	Added           int    `json:"added"`
	Upgraded        int    `json:"upgraded"`
	Removed         int    `json:"removed"`
	EntitiesAdded   int    `json:"entities_added"`
	EntitiesChanged int    `json:"entities_changed"`
	EntitiesRemoved int    `json:"entities_removed"`
	Facts           int    `json:"facts"`
	Entities        int    `json:"entities"`
	Emerging        int    `json:"emerging"`
}

// State is the incremental analytics state at one session version. It is
// not safe for concurrent use; wrap it (qkbfly.AnalyticsTracker does).
type State struct {
	version     uint64
	facts       map[string]factMeta // dedup key -> contribution
	ents        map[string]entMeta  // entity ID -> contribution
	growth      []VersionDelta      // newest last, bounded by growthLimit
	growthLimit int
}

// New returns an empty State at version 0. growthLimit bounds the
// retained per-version growth records; <= 0 means 256.
func New(growthLimit int) *State {
	if growthLimit <= 0 {
		growthLimit = 256
	}
	return &State{
		facts:       make(map[string]factMeta),
		ents:        make(map[string]entMeta),
		growthLimit: growthLimit,
	}
}

// FromKB builds the state by a full scan over a materialized KB — the
// seed for a session restored mid-history, and the recompute a resync
// falls back to after a dropped delta stream. Growth history starts
// empty (it cannot be reconstructed from a single version).
func FromKB(kb *store.KB, version uint64, growthLimit int) *State {
	st := New(growthLimit)
	st.version = version
	facts := kb.Facts()
	for i := range facts {
		f := &facts[i]
		st.facts[store.FactKey(f)] = metaOf(f)
	}
	for _, e := range kb.Entities() {
		st.ents[e.ID] = entMetaOf(e)
	}
	return st
}

func metaOf(f *store.Fact) factMeta {
	return factMeta{rel: strings.ToLower(f.Relation), conf: f.Confidence, doc: f.Source.DocID}
}

func entMetaOf(e *store.EntityRecord) entMeta {
	types := append([]string(nil), e.Types...)
	sort.Strings(types)
	types = dedupSorted(types)
	return entMeta{emerging: e.Emerging, types: types}
}

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Version returns the session version the state is folded up to.
func (st *State) Version() uint64 { return st.version }

// Apply folds one published version's delta. version must be exactly
// st.Version()+1 — a gap means the caller missed a version (a lagged
// watch channel) and must resync via FromKB. Internal inconsistencies
// (removing an unknown key, adding a duplicate) also error: they mean
// the state silently diverged, and continuing would bake the divergence
// into every later summary.
func (st *State) Apply(version uint64, d *store.Delta) (VersionDelta, error) {
	if version != st.version+1 {
		return VersionDelta{}, fmt.Errorf("analytics: delta for version %d cannot apply to state at %d", version, st.version)
	}
	for i := range d.Removed {
		k := store.FactKey(&d.Removed[i])
		if _, ok := st.facts[k]; !ok {
			return VersionDelta{}, fmt.Errorf("analytics: version %d removes unknown fact key %q", version, k)
		}
		delete(st.facts, k)
	}
	for i := range d.Upgraded {
		f := &d.Upgraded[i]
		k := store.FactKey(f)
		if _, ok := st.facts[k]; !ok {
			return VersionDelta{}, fmt.Errorf("analytics: version %d upgrades unknown fact key %q", version, k)
		}
		st.facts[k] = metaOf(f)
	}
	for i := range d.Added {
		f := &d.Added[i]
		k := store.FactKey(f)
		if _, ok := st.facts[k]; ok {
			return VersionDelta{}, fmt.Errorf("analytics: version %d re-adds live fact key %q", version, k)
		}
		st.facts[k] = metaOf(f)
	}
	for i := range d.RemovedEntities {
		id := d.RemovedEntities[i].ID
		if _, ok := st.ents[id]; !ok {
			return VersionDelta{}, fmt.Errorf("analytics: version %d removes unknown entity %q", version, id)
		}
		delete(st.ents, id)
	}
	for i := range d.ChangedEntities {
		e := &d.ChangedEntities[i]
		if _, ok := st.ents[e.ID]; !ok {
			return VersionDelta{}, fmt.Errorf("analytics: version %d changes unknown entity %q", version, e.ID)
		}
		st.ents[e.ID] = entMetaOf(e)
	}
	for i := range d.AddedEntities {
		e := &d.AddedEntities[i]
		if _, ok := st.ents[e.ID]; ok {
			return VersionDelta{}, fmt.Errorf("analytics: version %d re-adds live entity %q", version, e.ID)
		}
		st.ents[e.ID] = entMetaOf(e)
	}
	st.version = version
	vd := VersionDelta{
		Version:         version,
		Added:           len(d.Added),
		Upgraded:        len(d.Upgraded),
		Removed:         len(d.Removed),
		EntitiesAdded:   len(d.AddedEntities),
		EntitiesChanged: len(d.ChangedEntities),
		EntitiesRemoved: len(d.RemovedEntities),
		Facts:           len(st.facts),
		Entities:        len(st.ents),
		Emerging:        st.emergingCount(),
	}
	st.growth = append(st.growth, vd)
	if over := len(st.growth) - st.growthLimit; over > 0 {
		st.growth = append([]VersionDelta(nil), st.growth[over:]...)
	}
	return vd, nil
}

func (st *State) emergingCount() int {
	n := 0
	for _, e := range st.ents {
		if e.emerging {
			n++
		}
	}
	return n
}

// Growth returns the retained per-version analytic deltas, oldest first.
func (st *State) Growth() []VersionDelta {
	return append([]VersionDelta(nil), st.growth...)
}

// PredicateStats aggregates one predicate (lowered relation).
type PredicateStats struct {
	Predicate string  `json:"predicate"`
	Count     int     `json:"count"`
	MeanConf  float64 `json:"mean_confidence"`
	Histogram []int   `json:"histogram"`
}

// TypeCount is the number of entities carrying one type.
type TypeCount struct {
	Type  string `json:"type"`
	Count int    `json:"count"`
}

// DocCount is the number of winning facts one document contributes.
type DocCount struct {
	DocID string `json:"doc_id"`
	Count int    `json:"count"`
}

// Summary is the deterministic aggregate view of one version — the
// /analytics JSON body. Equal states marshal to equal bytes: every slice
// is sorted and the mean confidences are summed in sorted-key order.
type Summary struct {
	Version    uint64           `json:"version"`
	Facts      int              `json:"facts"`
	Entities   int              `json:"entities"`
	Emerging   int              `json:"emerging"`
	Confidence []int            `json:"confidence_histogram"`
	Predicates []PredicateStats `json:"predicates"`
	Types      []TypeCount      `json:"types"`
	Documents  []DocCount       `json:"documents"`
}

// Summary computes the aggregate view of the current state. Cost is
// O(live facts + entities) over the in-memory mirror — no tree walk, no
// materialization; cache it per version (AnalyticsTracker does).
func (st *State) Summary() *Summary {
	s := &Summary{
		Version:    st.version,
		Facts:      len(st.facts),
		Entities:   len(st.ents),
		Emerging:   st.emergingCount(),
		Confidence: make([]int, Buckets),
	}
	// Sorted-key iteration makes the floating-point confidence sums (and
	// every slice order) identical between the delta-folded state and a
	// full recompute: both walk the same keys in the same order.
	keys := make([]string, 0, len(st.facts))
	for k := range st.facts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type predAgg struct {
		count int
		sum   float64
		hist  []int
	}
	preds := make(map[string]*predAgg)
	var predNames []string
	docs := make(map[string]int)
	for _, k := range keys {
		m := st.facts[k]
		s.Confidence[bucketOf(m.conf)]++
		p := preds[m.rel]
		if p == nil {
			p = &predAgg{hist: make([]int, Buckets)}
			preds[m.rel] = p
			predNames = append(predNames, m.rel)
		}
		p.count++
		p.sum += m.conf
		p.hist[bucketOf(m.conf)]++
		docs[m.doc]++
	}
	sort.Strings(predNames)
	for _, name := range predNames {
		p := preds[name]
		s.Predicates = append(s.Predicates, PredicateStats{
			Predicate: name,
			Count:     p.count,
			MeanConf:  p.sum / float64(p.count),
			Histogram: p.hist,
		})
	}
	docNames := make([]string, 0, len(docs))
	for d := range docs {
		docNames = append(docNames, d)
	}
	sort.Strings(docNames)
	for _, d := range docNames {
		s.Documents = append(s.Documents, DocCount{DocID: d, Count: docs[d]})
	}
	types := make(map[string]int)
	entIDs := make([]string, 0, len(st.ents))
	for id := range st.ents {
		entIDs = append(entIDs, id)
	}
	sort.Strings(entIDs)
	for _, id := range entIDs {
		for _, ty := range st.ents[id].types {
			types[ty]++
		}
	}
	typeNames := make([]string, 0, len(types))
	for ty := range types {
		typeNames = append(typeNames, ty)
	}
	sort.Strings(typeNames)
	for _, ty := range typeNames {
		s.Types = append(s.Types, TypeCount{Type: ty, Count: types[ty]})
	}
	return s
}

// Compute is the full-scan reference: the Summary of a materialized KB
// at the given version. The delta-folded State.Summary must be
// byte-identical to it at every published version — the property the
// session-layer test enforces.
func Compute(kb *store.KB, version uint64) *Summary {
	return FromKB(kb, version, 1).Summary()
}
