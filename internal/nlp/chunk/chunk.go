// Package chunk implements a noun-phrase chunker over POS-tagged tokens.
//
// It stands in for the CoreNLP noun-phrase chunker used by the paper's
// pre-processing pipeline (§2.2): each maximal sequence of the form
// (DT|PRP$)? (CD|JJ|VBG|VBN)* (NN|NNS|NNP|NNPS)+ becomes one chunk whose
// head is its last noun token. Possessive constructions ("Pitt 's ex-wife")
// are split into two chunks so that the "'s <noun>" relation heuristic of
// §3 can see both noun phrases.
package chunk

import "qkbfly/internal/nlp"

// Chunk identifies the noun-phrase chunks of a sentence and stores them in
// sent.Chunks (sorted by position, non-overlapping). Named-entity and time
// mentions already present in sent.Mentions are kept atomic: a mention is
// never split across chunks, and a TIME mention forms a chunk of its own.
func Chunk(sent *nlp.Sentence) {
	toks := sent.Tokens
	sent.Chunks = sent.Chunks[:0]
	mentionStart := make(map[int]int) // start token -> end token
	for _, m := range sent.Mentions {
		mentionStart[m.Start] = m.End
	}
	i := 0
	for i < len(toks) {
		// Atomic TIME mention chunk.
		if end, ok := mentionStart[i]; ok && toks[i].NER == nlp.NERTime {
			sent.Chunks = append(sent.Chunks, nlp.Chunk{Start: i, End: end, Head: end - 1})
			i = end
			continue
		}
		if !startsNP(toks, i) {
			i++
			continue
		}
		start := i
		// optional determiner / possessive pronoun
		if toks[i].POS == nlp.DT || toks[i].POS == nlp.PRPS {
			i++
		}
		// premodifiers
		for i < len(toks) && isPremod(toks[i].POS) {
			i++
		}
		// nouns; stop before a possessive marker so "Pitt 's wife" splits,
		// and stop at a TIME mention boundary
		nounStart := i
		for i < len(toks) && toks[i].POS.IsNoun() && toks[i].NER != nlp.NERTime {
			i++
			if i < len(toks) && toks[i].POS == nlp.POS {
				break
			}
		}
		if i == nounStart {
			// Premodifiers without a noun head ("the latest" as elliptic
			// NP is rare); treat a trailing CD sequence as a number chunk.
			i = start + 1
			continue
		}
		sent.Chunks = append(sent.Chunks, nlp.Chunk{Start: start, End: i, Head: i - 1})
		// Skip the possessive marker; the next NP starts fresh.
		if i < len(toks) && toks[i].POS == nlp.POS {
			i++
		}
	}
}

// startsNP reports whether a noun phrase can start at index i.
func startsNP(toks []nlp.Token, i int) bool {
	t := toks[i].POS
	if t.IsNoun() {
		return true
	}
	if t == nlp.DT || t == nlp.PRPS || t == nlp.CD || t.IsAdjective() {
		// must be followed (possibly after premodifiers) by a noun
		for j := i + 1; j < len(toks); j++ {
			p := toks[j].POS
			if p.IsNoun() {
				return true
			}
			if !isPremod(p) {
				return false
			}
		}
	}
	return false
}

func isPremod(t nlp.POSTag) bool {
	return t == nlp.CD || t.IsAdjective() || t == nlp.VBG || t == nlp.VBN
}

// ChunkAt returns the index within sent.Chunks of the chunk containing token
// index tok, or -1 if no chunk contains it.
func ChunkAt(sent *nlp.Sentence, tok int) int {
	for ci, c := range sent.Chunks {
		if tok >= c.Start && tok < c.End {
			return ci
		}
	}
	return -1
}
