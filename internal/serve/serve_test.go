package serve_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qkbfly"
	"qkbfly/internal/corpus"
	"qkbfly/internal/kb/store"
	"qkbfly/internal/nlp"
	"qkbfly/internal/nlp/clause"
	"qkbfly/internal/nlp/depparse"
	"qkbfly/internal/search"
	"qkbfly/internal/serve"
	"qkbfly/internal/stats"
)

// ---------------------------------------------------------------------------
// Fake backend: deterministic shards, controllable blocking — lets the
// suite exercise singleflight, caching and cancellation without paying
// for real pipeline runs.
// ---------------------------------------------------------------------------

type fakeBackend struct {
	runs atomic.Int32 // BuildShardsContext invocations

	mu        sync.Mutex
	built     [][]string          // doc IDs of each build call, in call order
	docsFor   map[string][]string // query -> doc IDs; default: size docs derived from the query
	started   chan struct{}       // when non-nil, receives one signal per build start
	release   chan struct{}       // when non-nil, builds block until closed (or ctx done)
	cancelled chan struct{}       // when non-nil, receives one signal per cancelled build
	buildTime time.Duration       // fake per-doc pipeline time reported in stats
}

func (f *fakeBackend) Retrieve(query, source string, size int) []*nlp.Document {
	f.mu.Lock()
	ids := f.docsFor[query]
	f.mu.Unlock()
	if ids == nil {
		for i := 0; i < size; i++ {
			ids = append(ids, fmt.Sprintf("%s#%d", query, i))
		}
	}
	docs := make([]*nlp.Document, 0, len(ids))
	for _, id := range ids {
		docs = append(docs, &nlp.Document{ID: id, Title: id})
	}
	return docs
}

func (f *fakeBackend) BuildShardsContext(ctx context.Context, docs []*nlp.Document, opts ...qkbfly.Option) ([]*store.KB, *qkbfly.BuildStats, error) {
	f.runs.Add(1)
	f.mu.Lock()
	ids := make([]string, len(docs))
	for i, d := range docs {
		ids[i] = d.ID
	}
	f.built = append(f.built, ids)
	started, release := f.started, f.release
	per := f.buildTime
	f.mu.Unlock()
	if per == 0 {
		per = time.Millisecond
	}

	if started != nil {
		started <- struct{}{}
	}
	if release != nil {
		abort := func() ([]*store.KB, *qkbfly.BuildStats, error) {
			// Cancelled mid-build: no document was completed.
			if f.cancelled != nil {
				f.cancelled <- struct{}{}
			}
			return make([]*store.KB, len(docs)),
				&qkbfly.BuildStats{Parallelism: 1, PerDocElapsed: make([]time.Duration, len(docs))},
				ctx.Err()
		}
		select {
		case <-release:
			// release can race with cancellation; cancellation wins.
			if ctx.Err() != nil {
				return abort()
			}
		case <-ctx.Done():
			return abort()
		}
	}

	shards := make([]*store.KB, len(docs))
	perDoc := make([]time.Duration, len(docs))
	for i, d := range docs {
		shards[i] = shardFor(d.ID)
		perDoc[i] = per
	}
	bs := &qkbfly.BuildStats{
		Documents: len(docs), Sentences: len(docs), Clauses: len(docs),
		Parallelism: 1, PerDocElapsed: perDoc,
	}
	bs.StageElapsed.Annotate = per * time.Duration(len(docs))
	return shards, bs, nil
}

// shardFor builds the deterministic per-document shard of the fake
// pipeline: one entity and one fact derived from the document ID.
func shardFor(id string) *store.KB {
	kb := store.New()
	kb.AddEntity(store.EntityRecord{ID: "E_" + id, Name: id, Mentions: []string{id}, Types: []string{"DOC"}})
	kb.AddFact(store.Fact{
		Subject:    store.Value{EntityID: "E_" + id},
		Relation:   "mentions",
		Pattern:    "mentions",
		Objects:    []store.Value{{Literal: "content of " + id}},
		Confidence: 1,
		Source:     store.Provenance{DocID: id},
	})
	return kb
}

// ---------------------------------------------------------------------------
// Real-system fixture (small synthetic world), shared across tests.
// ---------------------------------------------------------------------------

var realFixture struct {
	once  sync.Once
	world *corpus.World
	sys   *qkbfly.System
}

func realSystem(t *testing.T) (*corpus.World, *qkbfly.System) {
	t.Helper()
	realFixture.once.Do(func() {
		w := corpus.NewWorld(corpus.SmallConfig())
		pipe := clause.NewPipeline(w.Repo, depparse.Malt)
		st := stats.Build(corpus.Docs(w.BackgroundCorpus()), w.Repo, pipe)
		idx := search.New(corpus.Docs(append(w.BackgroundCorpus(), w.NewsDataset(2)...)))
		realFixture.world = w
		realFixture.sys = qkbfly.New(qkbfly.Resources{
			Repo: w.Repo, Patterns: w.Patterns, Stats: st, Index: idx,
		}, qkbfly.DefaultConfig())
	})
	return realFixture.world, realFixture.sys
}

// ---------------------------------------------------------------------------
// Concurrency suite
// ---------------------------------------------------------------------------

// TestServeSingleflightCollapsesDuplicates hammers the server with
// goroutines issuing duplicate and distinct queries: every duplicate must
// be served by a cache hit or an in-flight join, so the engine runs
// exactly once per distinct query, and every result must be
// fingerprint-identical to a cold build of the same query.
func TestServeSingleflightCollapsesDuplicates(t *testing.T) {
	fb := &fakeBackend{}
	srv := serve.New(fb, serve.Options{})
	queries := []string{"alpha", "bravo", "charlie", "delta", "echo"}
	const perQuery = 16

	cold := map[string]string{} // query -> fingerprint of an isolated cold build
	for _, q := range queries {
		res, err := serve.New(&fakeBackend{}, serve.Options{}).KB(context.Background(), q, "", 2)
		if err != nil {
			t.Fatalf("cold %s: %v", q, err)
		}
		cold[q] = res.KB.Fingerprint()
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(queries)*perQuery)
	for _, q := range queries {
		for g := 0; g < perQuery; g++ {
			wg.Add(1)
			go func(q string) {
				defer wg.Done()
				res, err := srv.KB(context.Background(), q, "", 2)
				if err != nil {
					errs <- fmt.Errorf("%s: %v", q, err)
					return
				}
				if got := res.KB.Fingerprint(); got != cold[q] {
					errs <- fmt.Errorf("%s: served KB differs from cold build", q)
				}
			}(q)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if got := int(fb.runs.Load()); got != len(queries) {
		t.Errorf("engine build calls = %d, want %d (one per distinct query)", got, len(queries))
	}
	c := srv.Counters()
	if got := c.Get(serve.CounterEngineRuns); got != int64(len(queries)) {
		t.Errorf("engine_runs counter = %d, want %d", got, len(queries))
	}
	total := c.Get(serve.CounterQueryHits) + c.Get(serve.CounterQueryMisses) + c.Get(serve.CounterInflightJoins)
	if want := int64(len(queries) * perQuery); total != want {
		t.Errorf("hits(%d)+misses(%d)+joins(%d) = %d, want %d requests accounted",
			c.Get(serve.CounterQueryHits), c.Get(serve.CounterQueryMisses),
			c.Get(serve.CounterInflightJoins), total, want)
	}
	if got := c.Get(serve.CounterQueryMisses); got != int64(len(queries)) {
		t.Errorf("query_misses = %d, want %d", got, len(queries))
	}
}

// TestServeWarmHitSkipsEngine is the warm-path acceptance check on the
// real system: the second identical query is served from the query cache
// with zero additional engine runs and an identical fingerprint to both
// the first serve and a direct (serverless) cold build.
func TestServeWarmHitSkipsEngine(t *testing.T) {
	w, sys := realSystem(t)
	srv := serve.New(sys, serve.Options{})
	ctx := context.Background()
	name := w.Entity(w.EntitiesOfType("ACTOR")[0]).Name

	coldKB, _, _, err := sys.BuildKBForQueryContext(ctx, name, "wikipedia", 2)
	if err != nil {
		t.Fatal(err)
	}
	want := coldKB.Fingerprint()
	if want == "" {
		t.Fatal("cold build produced an empty KB")
	}

	first, err := srv.KB(ctx, name, "wikipedia", 2)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Error("first serve reported a cache hit")
	}
	if got := first.KB.Fingerprint(); got != want {
		t.Error("first serve differs from direct cold build")
	}
	runsAfterCold := srv.Counters().Get(serve.CounterEngineRuns)
	if runsAfterCold != 1 {
		t.Fatalf("engine_runs after cold serve = %d, want 1", runsAfterCold)
	}

	warm, err := srv.KB(ctx, name, "wikipedia", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Error("second serve was not a cache hit")
	}
	if got := warm.KB.Fingerprint(); got != want {
		t.Error("warm serve differs from cold build")
	}
	if got := srv.Counters().Get(serve.CounterEngineRuns); got != runsAfterCold {
		t.Errorf("warm serve invoked the engine: engine_runs = %d, want %d", got, runsAfterCold)
	}
	if srv.Counters().Get(serve.CounterSavedTotalNS) <= 0 {
		t.Error("warm hit credited no saved time")
	}
	if warm.Stats == nil || warm.Stats.Documents != first.Stats.Documents {
		t.Errorf("warm stats = %+v, want the cold build's accounting", warm.Stats)
	}
}

// TestServeKBForDocsShardReuse drives the qa-style path on the real
// system: building twice for the same retrieved documents must reuse
// every shard (no second engine run) and produce a byte-identical KB to
// the direct engine build.
func TestServeKBForDocsShardReuse(t *testing.T) {
	w, sys := realSystem(t)
	srv := serve.New(sys, serve.Options{})
	ctx := context.Background()
	docs := func() []*nlp.Document { return corpus.Docs(w.WikiDataset(6)) }

	directKB, _, err := sys.BuildKBContext(ctx, docs())
	if err != nil {
		t.Fatal(err)
	}
	want := directKB.Fingerprint()

	kb1, bs1, err := srv.KBForDocs(ctx, docs())
	if err != nil {
		t.Fatal(err)
	}
	if got := kb1.Fingerprint(); got != want {
		t.Error("served KBForDocs differs from direct BuildKBContext")
	}
	if bs1.Documents != 6 || len(bs1.PerDocElapsed) != 6 {
		t.Errorf("cold stats: %d docs, %d per-doc timings", bs1.Documents, len(bs1.PerDocElapsed))
	}

	kb2, bs2, err := srv.KBForDocs(ctx, docs())
	if err != nil {
		t.Fatal(err)
	}
	if got := kb2.Fingerprint(); got != want {
		t.Error("shard-reused KBForDocs differs from direct build")
	}
	if bs2.Documents != 6 {
		t.Errorf("warm stats: %d docs", bs2.Documents)
	}
	c := srv.Counters()
	if got := c.Get(serve.CounterEngineRuns); got != 1 {
		t.Errorf("engine_runs = %d, want 1 (second build fully shard-served)", got)
	}
	if got := c.Get(serve.CounterShardHits); got != 6 {
		t.Errorf("shard_hits = %d, want 6", got)
	}
}

// TestServeConcurrentDistinctAndOverlappingDocs hammers KBForDocs from
// many goroutines over overlapping document sets under the race detector:
// results must stay deterministic and the shard cache must stay coherent.
func TestServeConcurrentDistinctAndOverlappingDocs(t *testing.T) {
	fb := &fakeBackend{}
	srv := serve.New(fb, serve.Options{})
	ctx := context.Background()

	sets := [][]string{
		{"d1", "d2", "d3"},
		{"d2", "d3", "d4"},
		{"d3", "d4", "d5"},
	}
	want := make([]string, len(sets))
	for i, ids := range sets {
		shards := make([]*store.KB, 0, len(ids))
		for _, id := range ids {
			shards = append(shards, shardFor(id))
		}
		merged := store.New()
		for _, sh := range shards {
			merged.Merge(sh)
		}
		want[i] = merged.Fingerprint()
	}
	mkDocs := func(ids []string) []*nlp.Document {
		docs := make([]*nlp.Document, 0, len(ids))
		for _, id := range ids {
			docs = append(docs, &nlp.Document{ID: id, Title: id})
		}
		return docs
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for round := 0; round < 8; round++ {
		for i := range sets {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				kb, _, err := srv.KBForDocs(ctx, mkDocs(sets[i]))
				if err != nil {
					errs <- err
					return
				}
				if kb.Fingerprint() != want[i] {
					errs <- fmt.Errorf("set %d: nondeterministic merge", i)
				}
			}(i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Overlapping sets may race on a shared document before either caches
	// it (both build it; the results are identical), but the shard cache
	// must converge on exactly the five distinct documents.
	if snap := srv.Stats(); snap.ShardEntries != 5 {
		t.Errorf("shard entries = %d, want 5", snap.ShardEntries)
	}
}
