package stats

import (
	"reflect"
	"sync"
	"testing"
)

func TestCounterSetConcurrentAdds(t *testing.T) {
	c := NewCounterSet()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add("hits", 1)
				c.Add("saved_ns", 3)
			}
		}()
	}
	wg.Wait()
	if got := c.Get("hits"); got != 8000 {
		t.Errorf("hits = %d, want 8000", got)
	}
	if got := c.Get("saved_ns"); got != 24000 {
		t.Errorf("saved_ns = %d, want 24000", got)
	}
	if got := c.Get("never-touched"); got != 0 {
		t.Errorf("unknown counter = %d, want 0", got)
	}
	if names := c.Names(); !reflect.DeepEqual(names, []string{"hits", "saved_ns"}) {
		t.Errorf("names = %v", names)
	}
	snap := c.Snapshot()
	c.Add("hits", 1)
	if snap["hits"] != 8000 {
		t.Errorf("snapshot mutated by later Add: %d", snap["hits"])
	}
}
