package serve_test

import (
	"context"
	"testing"

	"qkbfly"
	"qkbfly/internal/nlp"
	"qkbfly/internal/serve"
)

// docsByID builds named fake documents.
func docsByID(ids ...string) []*nlp.Document {
	out := make([]*nlp.Document, len(ids))
	for i, id := range ids {
		out[i] = &nlp.Document{ID: id, Title: id}
	}
	return out
}

// TestRunCacheSharesPartialMerges: two KBForDocs calls over the same
// document set share every partial merge — the second call performs zero
// new merges — and a call over an overlapping set reuses the shared
// pairwise runs. Content stays identical to a cold fold.
func TestRunCacheSharesPartialMerges(t *testing.T) {
	f := &fakeBackend{}
	srv := serve.New(f, serve.Options{})
	ctx := context.Background()
	c := srv.Counters()

	kb1, _, err := srv.KBForDocs(ctx, docsByID("a", "b", "c", "d"))
	if err != nil {
		t.Fatal(err)
	}
	// Pairwise fold of 4 docs: (a+b), (c+d), (ab+cd) = 3 misses.
	if got := c.Get(serve.CounterRunMisses); got != 3 {
		t.Fatalf("run_misses after cold fold = %d, want 3", got)
	}
	if got := c.Get(serve.CounterRunHits); got != 0 {
		t.Fatalf("run_hits after cold fold = %d, want 0", got)
	}

	kb2, _, err := srv.KBForDocs(ctx, docsByID("a", "b", "c", "d"))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Get(serve.CounterRunMisses); got != 3 {
		t.Errorf("repeat fold missed the run cache (misses %d, want 3)", got)
	}
	if got := c.Get(serve.CounterRunHits); got != 3 {
		t.Errorf("repeat fold run_hits = %d, want 3 (every pair served from cache)", got)
	}
	if kb2.Fingerprint() != kb1.Fingerprint() {
		t.Error("run-cache-served fold differs from cold fold")
	}

	// Overlapping prefix: (a+b) is shared, (c+e) and the top are new.
	kb3, _, err := srv.KBForDocs(ctx, docsByID("a", "b", "c", "e"))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Get(serve.CounterRunHits); got != 4 {
		t.Errorf("overlapping fold run_hits = %d, want 4 ((a+b) reused)", got)
	}
	if got := c.Get(serve.CounterRunMisses); got != 5 {
		t.Errorf("overlapping fold run_misses = %d, want 5", got)
	}
	if kb3.Fingerprint() == kb1.Fingerprint() {
		t.Error("distinct document sets folded to the same KB")
	}
}

// TestRunCacheSharedWithSessions: the partial merges a server-backed
// session's merge tree performs land in (and are served from) the same
// run cache the query path uses.
func TestRunCacheSharedWithSessions(t *testing.T) {
	f := &fakeBackend{}
	srv := serve.New(f, serve.Options{})
	ctx := context.Background()
	c := srv.Counters()

	// The session pushes a,b,c,d one by one: its LSM tail compaction
	// merges (a+b), (c+d) and (ab+cd) — the same runs a pairwise query
	// fold needs.
	sess := srv.OpenSession(qkbfly.SessionOptions{})
	defer sess.Close()
	for _, id := range []string{"a", "b", "c", "d"} {
		if _, _, err := sess.Ingest(ctx, docsByID(id)); err != nil {
			t.Fatal(err)
		}
	}
	misses := c.Get(serve.CounterRunMisses)
	if misses != 3 {
		t.Fatalf("session tree compaction run_misses = %d, want 3", misses)
	}

	kb, _, err := srv.KBForDocs(ctx, docsByID("a", "b", "c", "d"))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Get(serve.CounterRunMisses); got != misses {
		t.Errorf("query after session re-merged (misses %d -> %d); want full run reuse", misses, got)
	}
	if got := c.Get(serve.CounterRunHits); got != 3 {
		t.Errorf("query after session run_hits = %d, want 3 (all session runs reused)", got)
	}
	if kb.Fingerprint() != sess.Snapshot().Fingerprint() {
		t.Error("query fold differs from session version over the same docs")
	}
}

// TestInvalidateShardsClearsRuns: invalidating a document also drops the
// partial merges containing it, so a re-ingest under the same ID cannot
// fold stale content out of the run cache.
func TestInvalidateShardsClearsRuns(t *testing.T) {
	f := &fakeBackend{}
	srv := serve.New(f, serve.Options{})
	ctx := context.Background()

	if _, _, err := srv.KBForDocs(ctx, docsByID("a", "b")); err != nil {
		t.Fatal(err)
	}
	if srv.Stats().RunEntries == 0 {
		t.Fatal("no runs cached by the fold")
	}
	if removed := srv.InvalidateShards("a"); removed != 1 {
		t.Fatalf("InvalidateShards removed %d, want 1", removed)
	}
	if got := srv.Stats().RunEntries; got != 0 {
		t.Errorf("run cache holds %d entries after invalidation, want 0", got)
	}
}

// TestInvalidateShardsClearsRunsWithoutLeaf: the run cache must clear
// even when the document's own leaf segment is no longer in the shard
// cache (LRU/TTL-evicted after the run was cached) — a stale partial
// merge under the document's unchanged identity would otherwise serve
// replaced content.
func TestInvalidateShardsClearsRunsWithoutLeaf(t *testing.T) {
	f := &fakeBackend{}
	// ShardCapacity 1: caching shard "b" evicts leaf "a", but the run
	// (a+b) stays cached.
	srv := serve.New(f, serve.Options{ShardCapacity: 1})
	ctx := context.Background()

	if _, _, err := srv.KBForDocs(ctx, docsByID("a", "b")); err != nil {
		t.Fatal(err)
	}
	if srv.Stats().RunEntries == 0 {
		t.Fatal("no runs cached by the fold")
	}
	if removed := srv.InvalidateShards("a"); removed != 0 {
		t.Fatalf("leaf unexpectedly still cached (removed %d)", removed)
	}
	if got := srv.Stats().RunEntries; got != 0 {
		t.Errorf("run cache holds %d stale entries after invalidating an evicted leaf, want 0", got)
	}
}
