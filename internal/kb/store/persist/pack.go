// The pack file is a warm-boot accelerator: Seal concatenates every live
// blob into <dir>/pack so the next boot's recovery streams one
// sequential file instead of opening one content-addressed blob file
// per document. The pack is purely a cache — recovery verifies every
// pack slice against its content address before trusting it, falls back
// to the per-blob files on any mismatch or miss, and a stale pack (from
// an older seal) simply misses newer hashes. It is written via
// temp+rename, so a crash mid-write leaves either the complete previous
// pack or none at all; correctness never depends on it.
//
// Layout: magic "qpak" | format version (1 byte) | entries until EOF,
// each entry being the 64-byte hex content hash, a uvarint blob length,
// and the blob bytes.
package persist

import (
	"encoding/binary"
	"os"
	"path/filepath"
)

var packMagic = []byte("qpak")

const packFormatVersion = 1

func (s *Store) packPath() string { return filepath.Join(s.dir, "pack") }

// writePack rewrites the pack from the given live document set, reading
// each referenced blob back from the blob store. Failures only warn: the
// pack is an accelerator, never a correctness dependency.
func (s *Store) writePack(docs []docRef) {
	seen := make(map[string]bool, len(docs))
	buf := append([]byte(nil), packMagic...)
	buf = append(buf, packFormatVersion)
	for _, d := range docs {
		if seen[d.Hash] {
			continue
		}
		seen[d.Hash] = true
		blob, err := os.ReadFile(s.blobPath(d.Hash))
		if err != nil {
			s.opt.Logf("persist: pack: reading blob %s: %v (pack not written)", d.Hash[:12], err)
			return
		}
		buf = append(buf, d.Hash...)
		buf = binary.AppendUvarint(buf, uint64(len(blob)))
		buf = append(buf, blob...)
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-pack-*")
	if err != nil {
		s.opt.Logf("persist: pack: %v (pack not written)", err)
		return
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		s.opt.Logf("persist: pack: %v (pack not written)", err)
		return
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		s.opt.Logf("persist: pack: %v (pack not written)", err)
		return
	}
	if err := tmp.Close(); err != nil {
		s.opt.Logf("persist: pack: %v (pack not written)", err)
		return
	}
	if err := os.Rename(tmp.Name(), s.packPath()); err != nil {
		s.opt.Logf("persist: pack: %v (pack not written)", err)
		return
	}
	if err := syncDir(s.dir); err != nil {
		s.opt.Logf("persist: pack: syncing directory: %v", err)
		return
	}
	s.packBytes.Store(int64(len(buf)))
}

// loadPack reads the pack into a hash → blob-bytes map for recovery to
// consult. Any structural damage truncates the map at the last intact
// entry with a warning — the per-blob files remain authoritative. A
// missing pack (cold directory, unclean shutdown) returns nil silently.
func (s *Store) loadPack() map[string][]byte {
	buf, err := os.ReadFile(s.packPath())
	if err != nil {
		return nil
	}
	hdr := len(packMagic) + 1
	if len(buf) < hdr || string(buf[:len(packMagic)]) != string(packMagic) || buf[len(packMagic)] != packFormatVersion {
		s.opt.Logf("persist: ignoring unrecognized pack file")
		return nil
	}
	m := make(map[string][]byte)
	pos := hdr
	for pos < len(buf) {
		if pos+64 > len(buf) {
			s.opt.Logf("persist: pack truncated mid-entry; using %d intact entries", len(m))
			break
		}
		h := string(buf[pos : pos+64])
		pos += 64
		n, w := binary.Uvarint(buf[pos:])
		if w <= 0 || n > uint64(len(buf)-pos-w) {
			s.opt.Logf("persist: pack truncated mid-entry; using %d intact entries", len(m))
			break
		}
		pos += w
		m[h] = buf[pos : pos+int(n)]
		pos += int(n)
	}
	return m
}
