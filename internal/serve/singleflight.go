package serve

import (
	"context"
	"errors"
	"sync"
)

// errFlightAborted is delivered to waiters whose leader died (panicked)
// without producing a result.
var errFlightAborted = errors.New("serve: in-flight build aborted")

// flightResult is what one build delivers to every request coalesced onto
// it. kb/docs/stats may be partially filled alongside a non-nil err (a
// cancelled build still yields the KB over its processed prefix).
type flightResult struct {
	res *Result
	err error
}

// flightCall is one in-flight build; done is closed after res is set.
type flightCall struct {
	done chan struct{}
	res  *flightResult
}

// flightGroup collapses concurrent duplicate work: for each key, the
// first caller becomes the leader and runs fn; callers arriving while the
// leader is still running wait and share its result, so N simultaneous
// identical queries cost one engine run.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do executes fn once per key among concurrent callers. joined reports
// whether this caller waited on another caller's execution. A joiner
// whose own context is cancelled stops waiting and returns ctx.Err()
// without affecting the leader.
func (g *flightGroup) do(ctx context.Context, key string, fn func() *flightResult) (res *flightResult, joined bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			if c.res == nil { // the leader panicked before delivering
				return nil, true, errFlightAborted
			}
			return c.res, true, nil
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	// Clean up even if fn panics: the key must not stay poisoned (waiters
	// would block forever and the query could never be served again).
	defer func() {
		g.mu.Lock()
		delete(g.calls, key) // before close: late arrivals start a fresh call
		g.mu.Unlock()
		close(c.done)
	}()
	c.res = fn()
	return c.res, false, nil
}
