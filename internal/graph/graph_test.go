package graph

import (
	"testing"

	"qkbfly/internal/kb/entityrepo"
	"qkbfly/internal/nlp"
	"qkbfly/internal/nlp/clause"
	"qkbfly/internal/nlp/depparse"
)

func testRepo() *entityrepo.Repo {
	r := entityrepo.New()
	r.Add(&entityrepo.Entity{ID: "Brad_Pitt", Name: "Brad Pitt",
		Aliases: []string{"Pitt"}, Types: []string{entityrepo.TypeActor},
		Gender: nlp.GenderMale})
	r.Add(&entityrepo.Entity{ID: "Michael_Pitt", Name: "Michael Pitt",
		Aliases: []string{"Pitt"}, Types: []string{entityrepo.TypeActor},
		Gender: nlp.GenderMale})
	r.Add(&entityrepo.Entity{ID: "Angelina_Jolie", Name: "Angelina Jolie",
		Aliases: []string{"Jolie"}, Types: []string{entityrepo.TypeActor},
		Gender: nlp.GenderFemale})
	r.Add(&entityrepo.Entity{ID: "Margate", Name: "Margate",
		Types: []string{entityrepo.TypeCity}, Gender: nlp.GenderNeuter})
	r.Add(&entityrepo.Entity{ID: "Margate_F.C.", Name: "Margate F.C.",
		Aliases: []string{"Margate"}, Types: []string{entityrepo.TypeFootballClub},
		Gender: nlp.GenderNeuter})
	return r
}

func buildGraph(t *testing.T, text string) (*Graph, *nlp.Document) {
	t.Helper()
	repo := testRepo()
	pipe := clause.NewPipeline(repo, depparse.Malt)
	doc := &nlp.Document{ID: "test", Text: text}
	cls := pipe.AnnotateDocument(doc)
	return NewBuilder(repo).Build(doc, cls), doc
}

func countNodes(g *Graph, kind NodeKind) int {
	n := 0
	for _, node := range g.Nodes {
		if node.Kind == kind {
			n++
		}
	}
	return n
}

func countEdges(g *Graph, kind EdgeKind) int {
	n := 0
	for _, e := range g.Edges {
		if e.Kind == kind && !e.Removed {
			n++
		}
	}
	return n
}

func TestBasicGraphStructure(t *testing.T) {
	g, _ := buildGraph(t, "Brad Pitt married Angelina Jolie.")
	if got := countNodes(g, ClauseNode); got != 1 {
		t.Errorf("clause nodes = %d", got)
	}
	if got := countNodes(g, NounPhraseNode); got != 2 {
		t.Errorf("np nodes = %d", got)
	}
	if got := countEdges(g, RelationEdge); got != 1 {
		t.Errorf("relation edges = %d", got)
	}
	// Brad Pitt -> Brad_Pitt means edge; Jolie -> Angelina_Jolie.
	if got := countEdges(g, MeansEdge); got != 2 {
		t.Errorf("means edges = %d", got)
	}
}

func TestAmbiguousMeansEdges(t *testing.T) {
	g, _ := buildGraph(t, "Pitt married Angelina Jolie.")
	// "Pitt" matches two repository entities.
	np := g.NPAt(0, 0)
	if np == nil {
		t.Fatal("no NP node for Pitt")
	}
	cands := 0
	for _, eid := range g.EdgesAt(np.ID) {
		if g.Edges[eid].Kind == MeansEdge {
			cands++
		}
	}
	if cands != 2 {
		t.Errorf("Pitt candidates = %d, want 2", cands)
	}
}

func TestPronounSameAsEdges(t *testing.T) {
	g, _ := buildGraph(t, "Brad Pitt is an actor. He married Angelina Jolie.")
	if got := countNodes(g, PronounNode); got != 1 {
		t.Fatalf("pronoun nodes = %d", got)
	}
	// He -> Brad Pitt (PERSON); not to Jolie (appears after the pronoun).
	same := countEdges(g, SameAsEdge)
	if same < 1 {
		t.Errorf("sameAs edges = %d", same)
	}
}

func TestGenderFilterAtGraphLevel(t *testing.T) {
	g, _ := buildGraph(t, "Angelina Jolie is an actress. He won an award.")
	// "He" must not link to Jolie... the graph includes the edge; the
	// densifier removes it. Here we only check the pronoun node exists.
	if got := countNodes(g, PronounNode); got != 1 {
		t.Errorf("pronoun nodes = %d", got)
	}
}

func TestCorefWindowLimit(t *testing.T) {
	// Seven filler sentences push the name out of the 5-sentence window.
	text := "Brad Pitt is an actor. It rained. It rained. It rained. It rained. It rained. It rained. He won."
	g, _ := buildGraph(t, text)
	for _, e := range g.Edges {
		if e.Kind != SameAsEdge {
			continue
		}
		p, n := g.Nodes[e.From], g.Nodes[e.To]
		if p.Kind == PronounNode && n.Kind == NounPhraseNode {
			if p.SentIndex-n.SentIndex > 5 {
				t.Errorf("sameAs edge spans %d sentences", p.SentIndex-n.SentIndex)
			}
		}
	}
}

func TestPossessiveRelationEdge(t *testing.T) {
	g, _ := buildGraph(t, "Pitt's ex-wife Angelina Jolie arrived.")
	found := false
	for _, e := range g.Edges {
		if e.Kind == RelationEdge && e.Aux && e.Label == "ex-wife" {
			found = true
		}
	}
	if !found {
		t.Error("possessive 'ex-wife' relation edge missing")
	}
}

func TestComplementRelationEdge(t *testing.T) {
	g, _ := buildGraph(t, "Maddox is the son of Brad Pitt.")
	found := false
	for _, e := range g.Edges {
		if e.Kind == RelationEdge && e.Aux && e.Label == "be son of" {
			found = true
		}
	}
	if !found {
		t.Error("complement 'be son of' relation edge missing")
	}
}

func TestNamesMatch(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{"Brad Pitt", "Pitt", true},
		{"Pitt", "Brad Pitt", true},
		{"Brad Pitt", "Brad Pitt", true},
		{"Brad Pitt", "Angelina Jolie", false},
		{"Gwendolyn Ashcombe", "Adrien Ashcombe", false},
		{"", "Pitt", false},
	}
	for _, tt := range tests {
		if got := namesMatch(tt.a, tt.b); got != tt.want {
			t.Errorf("namesMatch(%q, %q) = %v", tt.a, tt.b, got)
		}
	}
}

func TestNounOnlyBuilderSkipsPronouns(t *testing.T) {
	repo := testRepo()
	pipe := clause.NewPipeline(repo, depparse.Malt)
	doc := &nlp.Document{ID: "test", Text: "Brad Pitt is an actor. He married Angelina Jolie."}
	cls := pipe.AnnotateDocument(doc)
	b := NewBuilder(repo)
	b.IncludePronouns = false
	g := b.Build(doc, cls)
	if got := countNodes(g, PronounNode); got != 0 {
		t.Errorf("pronoun nodes with IncludePronouns=false: %d", got)
	}
}

func TestTimeNodesHaveNoCandidates(t *testing.T) {
	g, _ := buildGraph(t, "Brad Pitt married Angelina Jolie on September 19, 2016.")
	for _, n := range g.Nodes {
		if n.Kind == NounPhraseNode && n.NER == nlp.NERTime {
			for _, eid := range g.EdgesAt(n.ID) {
				if g.Edges[eid].Kind == MeansEdge {
					t.Error("time node has entity candidates")
				}
			}
			if n.TimeValue != "2016-09-19" {
				t.Errorf("time node value = %q", n.TimeValue)
			}
		}
	}
}

func TestMultiWordUnknownNameGetsNoSurnameCandidates(t *testing.T) {
	g, _ := buildGraph(t, "Gwendolyn Pitt arrived.")
	np := g.NPAt(0, 1)
	if np == nil {
		t.Fatal("no NP for Gwendolyn Pitt")
	}
	for _, eid := range g.EdgesAt(np.ID) {
		if g.Edges[eid].Kind == MeansEdge {
			t.Errorf("unknown full name received candidate %s",
				g.Nodes[g.Edges[eid].To].EntityID)
		}
	}
}
