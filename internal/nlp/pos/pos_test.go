package pos

import (
	"strings"
	"testing"

	"qkbfly/internal/nlp"
	"qkbfly/internal/nlp/token"
)

func tagged(t *testing.T, text string) nlp.Sentence {
	t.Helper()
	sent := nlp.Sentence{Text: text, Tokens: token.Tokenize(text)}
	Tag(&sent)
	return sent
}

func assertTags(t *testing.T, text string, want ...nlp.POSTag) {
	t.Helper()
	sent := tagged(t, text)
	if len(sent.Tokens) != len(want) {
		var got []string
		for _, tok := range sent.Tokens {
			got = append(got, tok.Text+"/"+string(tok.POS))
		}
		t.Fatalf("%q: got %d tokens (%s), want %d", text, len(sent.Tokens), strings.Join(got, " "), len(want))
	}
	for i, w := range want {
		if sent.Tokens[i].POS != w {
			t.Errorf("%q token %d (%q) = %s, want %s", text, i, sent.Tokens[i].Text, sent.Tokens[i].POS, w)
		}
	}
}

func TestTagBasicSentences(t *testing.T) {
	assertTags(t, "Brad Pitt is an actor.",
		nlp.NNP, nlp.NNP, nlp.VBZ, nlp.DT, nlp.NN, nlp.PUNCT)
	assertTags(t, "He supports the campaign.",
		nlp.PRP, nlp.VBZ, nlp.DT, nlp.NN, nlp.PUNCT)
	assertTags(t, "She married him in 1999.",
		nlp.PRP, nlp.VBD, nlp.PRP, nlp.IN, nlp.CD, nlp.PUNCT)
}

func TestTagUnknownWords(t *testing.T) {
	sent := tagged(t, "Zorblatt quickly vorbled the snarfing gribbles.")
	wants := []nlp.POSTag{nlp.NNP, nlp.RB, nlp.VBD, nlp.DT, nlp.VBG, nlp.NNS, nlp.PUNCT}
	for i, w := range wants {
		if sent.Tokens[i].POS != w {
			t.Errorf("token %d (%q) = %s, want %s", i, sent.Tokens[i].Text, sent.Tokens[i].POS, w)
		}
	}
}

func TestCapitalizedLexiconWordMidSentence(t *testing.T) {
	// "Star" is a lexicon verb but capitalized mid-sentence it is part of
	// a name.
	sent := tagged(t, "He acted in Star Wars.")
	if sent.Tokens[3].POS != nlp.NNP {
		t.Errorf("Star = %s, want NNP", sent.Tokens[3].POS)
	}
}

func TestPossessiveMarkerDisambiguation(t *testing.T) {
	sent := tagged(t, "Pitt's wife arrived.")
	if sent.Tokens[1].POS != nlp.POS {
		t.Errorf("'s after noun = %s, want POS", sent.Tokens[1].POS)
	}
	sent = tagged(t, "He's an actor.")
	if sent.Tokens[1].POS != nlp.VBZ {
		t.Errorf("'s after pronoun = %s, want VBZ", sent.Tokens[1].POS)
	}
}

func TestPassiveParticiple(t *testing.T) {
	sent := tagged(t, "She was married to him.")
	if sent.Tokens[2].POS != nlp.VBN {
		t.Errorf("married after was = %s, want VBN", sent.Tokens[2].POS)
	}
	sent = tagged(t, "He has married twice.")
	if sent.Tokens[2].POS != nlp.VBN {
		t.Errorf("married after has = %s, want VBN", sent.Tokens[2].POS)
	}
}

func TestToPlusVerb(t *testing.T) {
	sent := tagged(t, "She wants to play well.")
	if sent.Tokens[3].POS != nlp.VB {
		t.Errorf("play after to = %s, want VB", sent.Tokens[3].POS)
	}
}

func TestNumbersAndMoney(t *testing.T) {
	sent := tagged(t, "He donated $100,000 yesterday.")
	if sent.Tokens[2].POS != nlp.CD {
		t.Errorf("$100,000 = %s, want CD", sent.Tokens[2].POS)
	}
}

func TestDeterminerVerbRepair(t *testing.T) {
	// "record" is a lexicon verb; after a possessive it is a noun.
	sent := tagged(t, "His record was broken.")
	if sent.Tokens[1].POS != nlp.NN {
		t.Errorf("record after His = %s, want NN", sent.Tokens[1].POS)
	}
}

func TestTagAllDocument(t *testing.T) {
	doc := nlp.Document{Sentences: token.TokenizeSentences("He won. She lost.")}
	TagAll(&doc)
	for si, s := range doc.Sentences {
		for ti, tok := range s.Tokens {
			if tok.POS == "" {
				t.Errorf("sentence %d token %d untagged", si, ti)
			}
		}
	}
}
