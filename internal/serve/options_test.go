package serve

import (
	"testing"

	"qkbfly"
)

// TestResolveOptionsEquivalentSetsShareKeys: cache keys derive from the
// resolved option values, so option sets that build the same KB — any
// order, duplicates (last wins, as in the engine), or differing only in
// execution knobs like parallelism — collapse onto one key.
func TestResolveOptionsEquivalentSetsShareKeys(t *testing.T) {
	base := resolveOptions([]qkbfly.Option{qkbfly.WithCorefWindow(3)}).key()
	equivalent := [][]qkbfly.Option{
		{qkbfly.WithCorefWindow(3), qkbfly.WithParallelism(8)},
		{qkbfly.WithParallelism(8), qkbfly.WithCorefWindow(3)},
		{qkbfly.WithCorefWindow(1), qkbfly.WithCorefWindow(3)}, // last wins
		{qkbfly.WithParallelism(1), qkbfly.WithCorefWindow(3), qkbfly.WithParallelism(16)},
	}
	for i, opts := range equivalent {
		if got := resolveOptions(opts).key(); got != base {
			t.Errorf("set %d: key %q, want %q", i, got, base)
		}
	}

	// Result-affecting differences must split.
	if got := resolveOptions([]qkbfly.Option{qkbfly.WithCorefWindow(5)}).key(); got == base {
		t.Error("different coref windows share a cache key")
	}
	if got := resolveOptions(nil).key(); got == base {
		t.Error("default options share a key with an explicit coref window")
	}

	// No options and parallelism-only must agree (parallelism never
	// changes the built KB).
	if a, b := resolveOptions(nil).key(), resolveOptions([]qkbfly.Option{qkbfly.WithParallelism(4)}).key(); a != b {
		t.Errorf("parallelism-only options split the key: %q vs %q", a, b)
	}
}

// TestResolveOptionsCapturesValues: the resolved struct reflects the
// actual engine configuration the options produce.
func TestResolveOptionsCapturesValues(t *testing.T) {
	r := resolveOptions([]qkbfly.Option{qkbfly.WithCorefWindow(7), qkbfly.WithParallelism(3)})
	if r.corefWindow != 7 || r.parallelism != 3 {
		t.Errorf("resolved %+v, want cw=7 par=3", r)
	}
	if r := resolveOptions(nil); r.corefWindow != -1 || r.parallelism != 0 {
		t.Errorf("defaults resolved to %+v, want cw=-1 par=0", r)
	}
}
