package store

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestDiffApplyPropertyRandomized: the satellite property — for
// randomized segment pairs a and b, apply(a, Diff(a, b)) fingerprints
// identically to b. Pairs are built as overlapping windows of one shard
// stream so all three delta classes (added, removed, upgraded) occur.
func TestDiffApplyPropertyRandomized(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		n := 4 + rng.Intn(6)
		shards := make([]*KB, n)
		for i := range shards {
			shards[i] = randShard(rng, fmt.Sprintf("doc%02d", i))
		}
		// a = merge of a random window, b = merge of another random
		// window over the same stream: shared docs keep keys stable,
		// disjoint docs add/remove, and key collisions across docs
		// produce in-place winner changes.
		lo1, hi1 := rng.Intn(n/2), n/2+rng.Intn(n/2)
		lo2, hi2 := rng.Intn(n/2), n/2+rng.Intn(n/2)
		a := flatMerge(shards[lo1 : hi1+1])
		b := flatMerge(shards[lo2 : hi2+1])

		d := Diff(a, b)
		got := d.Apply(a)
		if got.Fingerprint() != b.Fingerprint() {
			t.Fatalf("seed %d: apply(a, Diff(a,b)) != b\n--- got ---\n%s\n--- want ---\n%s",
				seed, got.Fingerprint(), b.Fingerprint())
		}
		// The reverse direction must hold too.
		rd := Diff(b, a)
		if rd.Apply(b).Fingerprint() != a.Fingerprint() {
			t.Fatalf("seed %d: apply(b, Diff(b,a)) != a", seed)
		}
	}
}

// TestDiffConfidenceUpgradeOnly: a pair differing only in one fact's
// confidence (same keys, same entities) yields exactly one Upgraded
// entry carrying the new state, and Apply reconstructs it.
func TestDiffConfidenceUpgradeOnly(t *testing.T) {
	mk := func(conf float64, doc string) *KB {
		kb := New()
		kb.AddEntity(EntityRecord{ID: "E", Name: "E", Mentions: []string{"E"}})
		kb.AddFact(fact(doc, 0, "E", "be", conf, Value{Literal: "thing"}))
		kb.AddFact(fact("base", 1, "E", "have", 0.7, Value{Literal: "prop"}))
		return kb
	}
	a, b := mk(0.4, "low"), mk(0.6, "high")
	d := Diff(a, b)
	if len(d.Added) != 0 || len(d.Removed) != 0 || len(d.Upgraded) != 1 {
		t.Fatalf("delta = %+v, want exactly one upgrade", d)
	}
	up := d.Upgraded[0]
	if up.Confidence != 0.6 || up.Source.DocID != "high" {
		t.Fatalf("upgrade carries %+v, want the new state", up)
	}
	if len(d.AddedEntities)+len(d.ChangedEntities)+len(d.RemovedEntities) != 0 {
		t.Fatalf("entity delta unexpectedly non-empty: %+v", d)
	}
	if d.Apply(a).Fingerprint() != b.Fingerprint() {
		t.Fatal("apply of upgrade-only delta does not reconstruct b")
	}
}

// TestDiffIdenticalIsEmpty: diffing a KB against an equal one is empty,
// and an empty delta applies as the identity.
func TestDiffIdenticalIsEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randShard(rng, "d")
	b := New()
	b.Merge(a)
	d := Diff(a, b)
	if !d.Empty() {
		t.Fatalf("diff of identical KBs = %+v", d)
	}
	if d.Apply(a).Fingerprint() != a.Fingerprint() {
		t.Fatal("empty delta is not the identity")
	}
}

// TestDiffTreesMatchesFlatDiff: the tree-candidate diff (the session's
// sliding-ingest fast path) must equal the flat byKey diff of the two
// materialized versions, for randomized push/remove transitions.
func TestDiffTreesMatchesFlatDiff(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(300 + seed))
		fx := &treeFixture{tree: NewTree(nil)}
		for i := 0; i < 6+rng.Intn(4); i++ {
			fx.push(rng)
		}
		old := fx.tree
		oldKB := old.Materialize()

		// Transition: push 1-2 new docs, remove 0-2 old ones.
		var changed []*Segment
		for i := 0; i < 1+rng.Intn(2); i++ {
			fx.push(rng)
			changed = append(changed, fx.segs[len(fx.segs)-1])
		}
		for i := 0; i < rng.Intn(3) && len(fx.shards) > 1; i++ {
			j := rng.Intn(len(fx.shards) - 1)
			changed = append(changed, fx.segs[j])
			fx.remove(j)
		}

		got := DiffTrees(old, fx.tree, changed)
		want := Diff(oldKB, fx.tree.Materialize())
		assertDeltasEqual(t, got, want, fmt.Sprintf("seed %d", seed))

		// And the diff applies: reconstructing the new version from the
		// old one through the tree-computed delta.
		if got.Apply(oldKB).Fingerprint() != fx.tree.Materialize().Fingerprint() {
			t.Fatalf("seed %d: tree delta does not reconstruct the new version", seed)
		}
	}
}

func assertDeltasEqual(t *testing.T, got, want Delta, label string) {
	t.Helper()
	factsEq := func(kind string, g, w []Fact) {
		if len(g) != len(w) {
			t.Fatalf("%s: %s count %d, want %d\n got: %v\nwant: %v", label, kind, len(g), len(w), g, w)
		}
		for i := range g {
			if g[i].String() != w[i].String() || g[i].Confidence != w[i].Confidence ||
				g[i].Source != w[i].Source || g[i].Pattern != w[i].Pattern {
				t.Fatalf("%s: %s[%d] = %+v, want %+v", label, kind, i, g[i], w[i])
			}
		}
	}
	factsEq("Added", got.Added, want.Added)
	factsEq("Upgraded", got.Upgraded, want.Upgraded)
	factsEq("Removed", got.Removed, want.Removed)
	entsEq := func(kind string, g, w []EntityRecord) {
		if len(g) != len(w) {
			t.Fatalf("%s: %s count %d, want %d", label, kind, len(g), len(w))
		}
		for i := range g {
			if g[i].ID != w[i].ID || entityChanged(&g[i], &w[i]) {
				t.Fatalf("%s: %s[%d] = %+v, want %+v", label, kind, i, g[i], w[i])
			}
		}
	}
	entsEq("AddedEntities", got.AddedEntities, want.AddedEntities)
	entsEq("ChangedEntities", got.ChangedEntities, want.ChangedEntities)
	entsEq("RemovedEntities", got.RemovedEntities, want.RemovedEntities)
}
