package graph

import "sort"

// GroupFinder is a reusable union-find over dense node IDs, shared by the
// densification and canonicalization stages to extract sameAs groups. Its
// buffers (parent table, pair buffer, group slices) are retained across
// Reset calls, so a per-worker finder stops allocating once sized.
//
// Determinism contract: after identical Add/Union sequences, Groups
// returns the same partition in the same order — groups ordered by root
// ID ascending, members ascending within each group. Callers rely on this
// for byte-identical parallel/serial builds.
type GroupFinder struct {
	parent []int32
	pairs  []rootedNode
	groups [][]int
}

type rootedNode struct{ root, id int32 }

// Reset prepares the finder for a graph with n nodes; no node is a member
// until Add is called for it.
func (u *GroupFinder) Reset(n int) {
	if cap(u.parent) < n {
		u.parent = make([]int32, n)
	}
	u.parent = u.parent[:n]
	for i := range u.parent {
		u.parent[i] = -1
	}
}

// Add makes id a member (a singleton set).
func (u *GroupFinder) Add(id int) { u.parent[id] = int32(id) }

func (u *GroupFinder) find(x int32) int32 {
	if u.parent[x] != x {
		u.parent[x] = u.find(u.parent[x])
	}
	return u.parent[x]
}

// Union merges the sets of members a and b (the root of a's set is
// re-parented onto b's — the orientation both stages historically used,
// kept so root identities stay stable).
func (u *GroupFinder) Union(a, b int) {
	ra, rb := u.find(int32(a)), u.find(int32(b))
	if ra != rb {
		u.parent[ra] = rb
	}
}

// Groups partitions the given members (which must be ascending, the order
// they were discovered in node order) into their sets: members ascending
// within a group, groups ordered by root ID. The returned slices are the
// finder's buffers, valid until the next Groups call.
func (u *GroupFinder) Groups(members []int) [][]int {
	pairs := u.pairs[:0]
	for _, id := range members {
		pairs = append(pairs, rootedNode{root: u.find(int32(id)), id: int32(id)})
	}
	u.pairs = pairs
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].root != pairs[j].root {
			return pairs[i].root < pairs[j].root
		}
		return pairs[i].id < pairs[j].id
	})
	out := u.groups[:0]
	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j].root == pairs[i].root {
			j++
		}
		// Reuse the inner slice a previous call left at this position.
		var grp []int
		if n := len(out); n < cap(out) {
			grp = out[:n+1][n][:0]
		}
		for k := i; k < j; k++ {
			grp = append(grp, int(pairs[k].id))
		}
		out = append(out, grp)
		i = j
	}
	u.groups = out
	return out
}
