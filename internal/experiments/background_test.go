package experiments

import (
	"context"
	"testing"

	"qkbfly"
	"qkbfly/internal/corpus"
	"qkbfly/internal/sched"
)

// TestSchedSnapshotSweepPinnedVersion: a sweep routed through the
// scheduler reads ONE pinned version even while the live session ingests
// past it, and its points are mutually consistent (monotone under τ).
func TestSchedSnapshotSweepPinnedVersion(t *testing.T) {
	env := getEnv(t)
	sys := env.System(qkbfly.Joint, qkbfly.Greedy)
	sess := sys.OpenSession(qkbfly.SessionOptions{})
	defer sess.Close()
	ctx := context.Background()

	docs := corpus.Docs(env.World.WikiDataset(8))
	if _, _, err := sess.Ingest(ctx, docs[:4]); err != nil {
		t.Fatal(err)
	}
	snap := sess.Snapshot()
	pinnedV := snap.Version()
	pinnedFP := snap.KB().Fingerprint()

	sc := sched.New(sched.Options{Workers: 2, Cooldown: 0})
	defer sc.Close()

	// Race the sweep against further ingest: the sweep must not observe
	// any of it.
	ingested := make(chan error, 1)
	go func() {
		_, _, err := sess.Ingest(ctx, docs[4:])
		ingested <- err
	}()
	res, err := RunSnapshotSweep(ctx, sc, snap, SweepOptions{
		Assessor: env.Assessor, SampleSize: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-ingested; err != nil {
		t.Fatal(err)
	}

	if res.Version != pinnedV {
		t.Fatalf("sweep version %d, pinned %d", res.Version, pinnedV)
	}
	if res.Fingerprint != pinnedFP {
		t.Fatal("sweep fingerprint differs from the pinned snapshot's KB")
	}
	if live := sess.Snapshot().Version(); live <= pinnedV {
		t.Fatalf("live session did not advance past pinned version %d", pinnedV)
	}
	if len(res.Points) != 5 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Points[0].Facts == 0 {
		t.Fatal("tau=0 point saw no facts")
	}
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Facts > res.Points[i-1].Facts {
			t.Fatalf("facts not monotone under tau: %+v", res.Points)
		}
	}
	// All points against one KB: the tau=0 point counts every fact the
	// pinned version holds.
	if res.Points[0].Facts != snap.KB().Len() {
		t.Fatalf("tau=0 facts %d != pinned KB len %d", res.Points[0].Facts, snap.KB().Len())
	}
	if s := res.String(); s == "" {
		t.Fatal("empty rendering")
	}
}

// TestSchedSnapshotSweepClosedScheduler: submitting against a closed
// scheduler fails loudly instead of hanging.
func TestSchedSnapshotSweepClosedScheduler(t *testing.T) {
	env := getEnv(t)
	sys := env.System(qkbfly.Joint, qkbfly.Greedy)
	sess := sys.OpenSession(qkbfly.SessionOptions{})
	defer sess.Close()
	if _, _, err := sess.Ingest(context.Background(), corpus.Docs(env.World.WikiDataset(2))); err != nil {
		t.Fatal(err)
	}
	sc := sched.New(sched.Options{})
	sc.Close()
	if _, err := RunSnapshotSweep(context.Background(), sc, sess.Snapshot(), SweepOptions{}); err == nil {
		t.Fatal("sweep against a closed scheduler reported no error")
	}
}
