// Newsroom: the journalist workflow the paper motivates (§1, §6) — monitor
// emerging events, build a KB over fresh news stories, and surface facts
// about entities that no static knowledge base knows yet.
package main

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"qkbfly"
	"qkbfly/internal/corpus"
	"qkbfly/internal/nlp/clause"
	"qkbfly/internal/nlp/depparse"
	"qkbfly/internal/search"
	"qkbfly/internal/stats"
)

func main() {
	world := corpus.NewWorld(corpus.SmallConfig())
	background := world.BackgroundCorpus()
	pipe := clause.NewPipeline(world.Repo, depparse.Malt)
	st := stats.Build(corpus.Docs(background), world.Repo, pipe)

	// The index holds the news stream (three stories per event).
	news := world.NewsDataset(3)
	index := search.New(corpus.Docs(append(background, news...)))

	sys := qkbfly.New(qkbfly.Resources{
		Repo: world.Repo, Patterns: world.Patterns, Stats: st, Index: index,
	}, qkbfly.DefaultConfig())

	// A journalist scans the emerging events and queries each one. Each
	// query gets a deadline — a newsroom dashboard cannot wait on a slow
	// batch, and a cancelled build still returns the KB over the
	// already-processed stories.
	for i := range world.Events {
		ev := &world.Events[i]
		if i >= 5 {
			break
		}
		query := ev.Queries[0]
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		kb, docs, _, err := sys.BuildKBForQueryContext(ctx, query, "news", 5,
			qkbfly.WithParallelism(runtime.NumCPU()))
		cancel()
		if err != nil {
			fmt.Printf("== event %d (%s): query %q timed out; partial KB with %d facts\n",
				ev.ID, ev.Kind, query, kb.Len())
			continue
		}
		fmt.Printf("== event %d (%s): query %q -> %d stories, %d facts\n",
			ev.ID, ev.Kind, query, len(docs), kb.Len())
		// Highlight the up-to-date knowledge: facts involving emerging
		// entities, which a static KB cannot contain.
		for _, f := range kb.Facts() {
			emergingSubject := kb.Entity(f.Subject.EntityID) != nil &&
				kb.Entity(f.Subject.EntityID).Emerging
			if emergingSubject {
				fmt.Printf("   EMERGING %s\n", f.String())
				continue
			}
			if f.Confidence >= 0.5 {
				fmt.Printf("   %.2f %s\n", f.Confidence, f.String())
			}
		}
	}
}
