// Package sched is the background maintenance scheduler: a small
// priority-ordered job runner for work that must only ever touch
// immutable snapshot versions — deferred tail compaction, run-cache
// prewarming, analytics re-scoring, batch experiment sweeps — never the
// live tree.
//
// The contract with the foreground ingest path has three parts:
//
//   - Priorities and budgets: jobs run highest-priority first (FIFO
//     within a priority) and each job may carry a wall-clock budget; a
//     job that overruns its budget has its context cancelled.
//   - Supersession: jobs of the same Kind are keyed by the snapshot
//     version they target. Submitting a newer version's job removes the
//     pending older one and cancels a running one — work against a
//     version nobody can adopt anymore is abandoned, not finished.
//   - Ingest pressure: the foreground calls NotifyPressure on every
//     publish. The scheduler will not start a job until the foreground
//     has been quiet for Cooldown, but never defers a ready job past
//     MaxStall — foreground work always wins the tie, background work
//     still makes progress under a continuously loaded session.
//
// Everything is accounted through an optional stats.CounterSet (the
// "sched_" counters surfaced by /stats).
package sched

import (
	"container/heap"
	"context"
	"sync"
	"time"

	"qkbfly/internal/stats"
)

// Counter names recorded into Options.Counters.
const (
	CounterSubmitted  = "sched_submitted"
	CounterRun        = "sched_jobs_run"
	CounterFailed     = "sched_jobs_failed"
	CounterSuperseded = "sched_superseded"
	CounterCancelled  = "sched_cancelled"
	CounterBusyNS     = "sched_busy_ns"
	CounterStallNS    = "sched_stall_ns"
)

// Job is one unit of background work over an immutable snapshot.
type Job struct {
	// Name labels the job for accounting; it has no scheduling meaning.
	Name string
	// Kind is the supersession group: when a job of the same Kind with a
	// higher Version is submitted, this job is removed (pending) or its
	// context cancelled (running). "" disables supersession.
	Kind string
	// Priority orders the queue, highest first; ties run in submit order.
	Priority int
	// Version is the snapshot version the job targets, compared within
	// its Kind for supersession.
	Version uint64
	// Budget bounds the job's wall-clock run time; 0 means unlimited.
	Budget time.Duration
	// Run does the work. It must honor ctx — cancellation means the
	// job's budget expired, its version was superseded, or the
	// scheduler closed — and must only read immutable snapshot state.
	Run func(ctx context.Context) error
}

// Options configure a Scheduler.
type Options struct {
	// Workers is the number of concurrent job runners (default 1 — the
	// maintenance work itself should not compete with foreground CPU).
	Workers int
	// Cooldown is the quiet period required after the last
	// NotifyPressure before a job may start (default 2ms).
	Cooldown time.Duration
	// MaxStall caps how long ingest pressure may defer a ready job, so
	// a continuously loaded foreground cannot starve maintenance
	// (default 100ms).
	MaxStall time.Duration
	// Counters, when non-nil, receives the sched_* accounting.
	Counters *stats.CounterSet
}

// pending is one queued job plus its heap bookkeeping.
type pending struct {
	job Job
	seq uint64 // FIFO tie-break within a priority
	idx int    // heap index, maintained by jobHeap
}

// jobHeap orders pending jobs by (priority desc, seq asc).
type jobHeap []*pending

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].job.Priority != h[j].job.Priority {
		return h[i].job.Priority > h[j].job.Priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *jobHeap) Push(x any) {
	p := x.(*pending)
	p.idx = len(*h)
	*h = append(*h, p)
}
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return p
}

// running tracks one in-flight job for supersession and Close.
type running struct {
	kind    string
	version uint64
	cancel  context.CancelFunc
}

// Scheduler runs background jobs under the priority / supersession /
// pressure contract. All methods are safe for concurrent use.
type Scheduler struct {
	opt Options

	mu           sync.Mutex
	cond         *sync.Cond
	queue        jobHeap
	seq          uint64
	active       map[*running]struct{}
	lastPressure time.Time
	closed       bool
	wg           sync.WaitGroup
}

// New starts a scheduler with opt.Workers runner goroutines.
func New(opt Options) *Scheduler {
	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	if opt.Cooldown <= 0 {
		opt.Cooldown = 2 * time.Millisecond
	}
	if opt.MaxStall <= 0 {
		opt.MaxStall = 100 * time.Millisecond
	}
	s := &Scheduler{opt: opt, active: make(map[*running]struct{})}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(opt.Workers)
	for i := 0; i < opt.Workers; i++ {
		go s.worker()
	}
	return s
}

func (s *Scheduler) count(name string, d int64) {
	if s.opt.Counters != nil {
		s.opt.Counters.Add(name, d)
	}
}

// Submit enqueues a job, superseding any pending or running job of the
// same Kind targeting an older version. It returns false after Close.
func (s *Scheduler) Submit(j Job) bool {
	if j.Run == nil {
		return false
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	if j.Kind != "" {
		// Drop pending same-kind jobs targeting older versions: nothing
		// can adopt their result once this submission's version exists.
		for i := 0; i < len(s.queue); {
			q := s.queue[i]
			if q.job.Kind == j.Kind && q.job.Version < j.Version {
				heap.Remove(&s.queue, q.idx)
				s.count(CounterSuperseded, 1)
				continue // heap reshuffled; re-examine index i
			}
			i++
		}
		for r := range s.active {
			if r.kind == j.Kind && r.version < j.Version {
				r.cancel()
				s.count(CounterSuperseded, 1)
			}
		}
	}
	s.seq++
	heap.Push(&s.queue, &pending{job: j, seq: s.seq})
	s.count(CounterSubmitted, 1)
	s.cond.Broadcast()
	s.mu.Unlock()
	return true
}

// NotifyPressure records foreground activity (an ingest publishing a
// version): no new job starts until Cooldown has passed, up to MaxStall.
func (s *Scheduler) NotifyPressure() {
	s.mu.Lock()
	s.lastPressure = time.Now()
	s.mu.Unlock()
}

// Drain blocks until the queue is empty and no job is running. New
// submissions after Drain returns run normally; use it in tests and at
// controlled checkpoints, not as a shutdown (see Close).
func (s *Scheduler) Drain() {
	s.mu.Lock()
	for len(s.queue) > 0 || len(s.active) > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Close stops the scheduler: pending jobs are discarded (counted as
// cancelled), running jobs have their contexts cancelled, and workers
// exit once their current job returns. Close blocks until all workers
// stopped; it is idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.count(CounterCancelled, int64(len(s.queue)))
	s.queue = nil
	for r := range s.active {
		r.cancel()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// worker is one runner goroutine.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for !s.closed && len(s.queue) == 0 {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		p := heap.Pop(&s.queue).(*pending)

		// Pressure gate: hold the popped job until the foreground has
		// been quiet for Cooldown, but never past MaxStall. Sleeping
		// happens off the lock so Submit/NotifyPressure never block on a
		// gated worker.
		ready := time.Now()
		stalled := time.Duration(0)
		for {
			quietFor := time.Since(s.lastPressure)
			if quietFor >= s.opt.Cooldown || time.Since(ready) >= s.opt.MaxStall || s.closed {
				break
			}
			wait := s.opt.Cooldown - quietFor
			if rem := s.opt.MaxStall - time.Since(ready); rem < wait {
				wait = rem
			}
			s.mu.Unlock()
			time.Sleep(wait)
			stalled += wait
			s.mu.Lock()
		}
		if stalled > 0 {
			s.count(CounterStallNS, int64(stalled))
		}
		if s.closed {
			s.count(CounterCancelled, 1)
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}

		var ctx context.Context
		var cancel context.CancelFunc
		if p.job.Budget > 0 {
			ctx, cancel = context.WithTimeout(context.Background(), p.job.Budget)
		} else {
			ctx, cancel = context.WithCancel(context.Background())
		}
		r := &running{kind: p.job.Kind, version: p.job.Version, cancel: cancel}
		s.active[r] = struct{}{}
		s.mu.Unlock()

		start := time.Now()
		err := p.job.Run(ctx)
		cancel()
		s.count(CounterBusyNS, int64(time.Since(start)))
		s.count(CounterRun, 1)
		if err != nil {
			if ctx.Err() != nil {
				s.count(CounterCancelled, 1)
			} else {
				s.count(CounterFailed, 1)
			}
		}

		s.mu.Lock()
		delete(s.active, r)
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}
