package sutime

import (
	"testing"

	"qkbfly/internal/nlp"
	"qkbfly/internal/nlp/pos"
	"qkbfly/internal/nlp/token"
)

func annotate(t *testing.T, text string) nlp.Sentence {
	t.Helper()
	sent := nlp.Sentence{Text: text, Tokens: token.Tokenize(text)}
	pos.Tag(&sent)
	Annotate(&sent)
	return sent
}

func firstTime(sent nlp.Sentence) (string, string) {
	for _, m := range sent.Mentions {
		if m.Type == nlp.NERTime {
			return m.Text, m.TimeValue
		}
	}
	return "", ""
}

func TestDateForms(t *testing.T) {
	tests := []struct {
		text      string
		wantText  string
		wantValue string
	}{
		{"She filed on September 19, 2016.", "September 19 , 2016", "2016-09-19"},
		{"He was born on 17 December 1936.", "17 December 1936", "1936-12-17"},
		{"He won the prize in May 2012.", "May 2012", "2012-05"},
		{"The film premiered in 2008.", "2008", "2008"},
		{"He toured during the 1980s.", "1980s", "198X"},
		{"The match is on Monday.", "Monday", "MON"},
		{"They met yesterday.", "yesterday", "YESTERDAY"},
		{"She resigned last year.", "last year", "LAST_YEAR"},
		{"The ceremony was in May.", "May", "XXXX-05"},
	}
	for _, tt := range tests {
		sent := annotate(t, tt.text)
		gotText, gotValue := firstTime(sent)
		if gotText != tt.wantText || gotValue != tt.wantValue {
			t.Errorf("%q: got (%q, %q), want (%q, %q)", tt.text, gotText, gotValue, tt.wantText, tt.wantValue)
		}
	}
}

func TestNoFalseTimes(t *testing.T) {
	for _, text := range []string{
		"He scored 31 goals.",          // bare small number
		"He donated $100,000 in cash.", // money
		"May I help you.",              // sentence-initial "May" not after "in"
	} {
		sent := annotate(t, text)
		if txt, val := firstTime(sent); txt != "" {
			t.Errorf("%q: unexpected time %q (%s)", text, txt, val)
		}
	}
}

func TestTokensMarked(t *testing.T) {
	sent := annotate(t, "She filed on September 19, 2016.")
	marked := 0
	for _, tok := range sent.Tokens {
		if tok.NER == nlp.NERTime {
			marked++
			if tok.TimeValue != "2016-09-19" {
				t.Errorf("token %q TimeValue = %q", tok.Text, tok.TimeValue)
			}
		}
	}
	if marked != 4 { // September 19 , 2016
		t.Errorf("marked %d tokens, want 4", marked)
	}
}

func TestYearRange(t *testing.T) {
	sent := annotate(t, "It happened in 999.")
	if txt, _ := firstTime(sent); txt != "" {
		t.Errorf("999 recognized as a year: %q", txt)
	}
	sent = annotate(t, "It happened in 1905.")
	if _, val := firstTime(sent); val != "1905" {
		t.Errorf("1905 not recognized, got %q", val)
	}
}
