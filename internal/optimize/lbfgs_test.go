package optimize

import (
	"math"
	"testing"
)

func TestQuadratic(t *testing.T) {
	// f(x) = (x0-3)^2 + 2(x1+1)^2, optimum at (3, -1).
	obj := func(x []float64) (float64, []float64) {
		f := (x[0]-3)*(x[0]-3) + 2*(x[1]+1)*(x[1]+1)
		return f, []float64{2 * (x[0] - 3), 4 * (x[1] + 1)}
	}
	res := Minimize(obj, []float64{0, 0}, DefaultOptions())
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if math.Abs(res.X[0]-3) > 1e-4 || math.Abs(res.X[1]+1) > 1e-4 {
		t.Errorf("optimum = %v", res.X)
	}
}

func TestRosenbrock(t *testing.T) {
	obj := func(x []float64) (float64, []float64) {
		a, b := x[0], x[1]
		f := (1-a)*(1-a) + 100*(b-a*a)*(b-a*a)
		g := []float64{
			-2*(1-a) - 400*a*(b-a*a),
			200 * (b - a*a),
		}
		return f, g
	}
	opt := DefaultOptions()
	opt.MaxIter = 500
	res := Minimize(obj, []float64{-1.2, 1}, opt)
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Errorf("Rosenbrock optimum = %v (f=%f, iters=%d)", res.X, res.F, res.Iterations)
	}
}

func TestHighDimensional(t *testing.T) {
	// Sum of shifted quadratics in 20 dimensions.
	n := 20
	obj := func(x []float64) (float64, []float64) {
		f := 0.0
		g := make([]float64, n)
		for i := range x {
			d := x[i] - float64(i)
			f += d * d
			g[i] = 2 * d
		}
		return f, g
	}
	res := Minimize(obj, make([]float64, n), DefaultOptions())
	for i := range res.X {
		if math.Abs(res.X[i]-float64(i)) > 1e-3 {
			t.Fatalf("x[%d] = %f, want %d", i, res.X[i], i)
		}
	}
}

func TestAlreadyOptimal(t *testing.T) {
	obj := func(x []float64) (float64, []float64) {
		return x[0] * x[0], []float64{2 * x[0]}
	}
	res := Minimize(obj, []float64{0}, DefaultOptions())
	if !res.Converged || res.Iterations != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestLogLikelihoodShape(t *testing.T) {
	// Maximize a concave log-likelihood by minimizing its negation —
	// the shape used for the α1..α4 tuning in §4.
	counts := []float64{5, 3, 2}
	obj := func(x []float64) (float64, []float64) {
		// Softmax log-likelihood of observing category 0 weighted by counts.
		var z float64
		exps := make([]float64, len(x))
		for i, xi := range x {
			exps[i] = math.Exp(xi)
			z += exps[i]
		}
		f := 0.0
		g := make([]float64, len(x))
		for i := range x {
			p := exps[i] / z
			f -= counts[i] * math.Log(p)
			for j := range x {
				indicator := 0.0
				if i == j {
					indicator = 1
				}
				g[j] -= counts[i] * (indicator - exps[j]/z)
			}
		}
		return f, g
	}
	res := Minimize(obj, []float64{0, 0, 0}, DefaultOptions())
	// The optimum assigns probabilities proportional to counts.
	var z float64
	for _, xi := range res.X {
		z += math.Exp(xi)
	}
	p0 := math.Exp(res.X[0]) / z
	if math.Abs(p0-0.5) > 1e-3 {
		t.Errorf("p0 = %f, want 0.5", p0)
	}
}
