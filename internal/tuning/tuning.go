// Package tuning implements the hyper-parameter learning of §4: the α1..α4
// weights of the edge-weight functions are learned by maximizing the
// probability of ground-truth annotations with L-BFGS.
//
// Following the paper, each annotation is a fact consisting of a pair of
// repository entities and a relation pattern. For each annotated fact a
// graph G with two noun-phrase nodes is constructed independently; the
// probability of choosing the gold candidate pair is
//
//	prob = W(S) / W(G)
//
// where S keeps only the gold entities and W sums the α-weighted edge
// features. The α parameters maximize the log-probability of all
// annotations.
package tuning

import (
	"math"

	"qkbfly/internal/corpus"
	"qkbfly/internal/kb/entityrepo"
	"qkbfly/internal/nlp"
	"qkbfly/internal/optimize"
	"qkbfly/internal/stats"
)

// Annotation is one ground-truth fact: two mentions with their gold
// entities, the relation pattern between them, and the sentence context.
type Annotation struct {
	MentionA, MentionB string
	GoldA, GoldB       string
	Pattern            string
	Sentence           *nlp.Sentence
}

// pairFeatures are the α-weighted feature values for one candidate pair.
type pairFeatures struct {
	prior [2]float64 // feature of α1 (both mentions)
	sim   [2]float64 // feature of α2
	coh   float64    // feature of α3
	ts    float64    // feature of α4
	gold  bool
}

func (p *pairFeatures) weight(alpha []float64) float64 {
	return alpha[0]*(p.prior[0]+p.prior[1]) +
		alpha[1]*(p.sim[0]+p.sim[1]) +
		alpha[2]*p.coh + alpha[3]*p.ts
}

func (p *pairFeatures) grad() [4]float64 {
	return [4]float64{p.prior[0] + p.prior[1], p.sim[0] + p.sim[1], p.coh, p.ts}
}

// Result of a tuning run.
type Result struct {
	Alpha       [4]float64
	LogLik      float64
	Iterations  int
	Annotations int
}

// Tune learns α1..α4 from annotations against the background statistics.
func Tune(annotations []Annotation, st *stats.Stats, repo *entityrepo.Repo) Result {
	// Precompute per-annotation candidate-pair features.
	var all [][]pairFeatures
	for _, a := range annotations {
		pf := pairsFor(&a, st, repo)
		if pf != nil {
			all = append(all, pf)
		}
	}
	// Parameterize α = softplus(θ) to keep weights positive; maximize
	// Σ log( w_gold / Σ w_pair ) by minimizing its negation.
	obj := func(theta []float64) (float64, []float64) {
		alpha := make([]float64, 4)
		dAlpha := make([]float64, 4) // dα/dθ
		for i := range theta {
			alpha[i] = softplus(theta[i])
			dAlpha[i] = sigmoid(theta[i])
		}
		f := 0.0
		grad := make([]float64, 4)
		const eps = 1e-9
		for _, pairs := range all {
			var wGold, wSum float64
			var gGold, gSum [4]float64
			for i := range pairs {
				w := pairs[i].weight(alpha) + eps
				g := pairs[i].grad()
				wSum += w
				for k := 0; k < 4; k++ {
					gSum[k] += g[k]
				}
				if pairs[i].gold {
					wGold = w
					gGold = g
				}
			}
			if wGold == 0 || wSum == 0 {
				continue
			}
			f -= math.Log(wGold / wSum)
			for k := 0; k < 4; k++ {
				grad[k] -= gGold[k]/wGold - gSum[k]/wSum
			}
		}
		// Chain rule through the softplus.
		out := make([]float64, 4)
		for k := 0; k < 4; k++ {
			out[k] = grad[k] * dAlpha[k]
		}
		return f, out
	}
	opt := optimize.DefaultOptions()
	opt.MaxIter = 200
	res := optimize.Minimize(obj, []float64{0, 0, 0, 0}, opt)
	var alpha [4]float64
	sum := 0.0
	for i := range alpha {
		alpha[i] = softplus(res.X[i])
		sum += alpha[i]
	}
	// Normalize: only the ratios matter for the argmax.
	if sum > 0 {
		for i := range alpha {
			alpha[i] /= sum
		}
	}
	return Result{
		Alpha: alpha, LogLik: -res.F,
		Iterations: res.Iterations, Annotations: len(all),
	}
}

// pairsFor builds the candidate-pair feature table of one annotation.
func pairsFor(a *Annotation, st *stats.Stats, repo *entityrepo.Repo) []pairFeatures {
	candsA := repo.Candidates(a.MentionA)
	candsB := repo.Candidates(a.MentionB)
	if len(candsA) == 0 || len(candsB) == 0 {
		return nil
	}
	var vec map[string]float64
	var vecSum float64
	if a.Sentence != nil {
		vec, vecSum = st.SentenceVector(a.Sentence)
	}
	var out []pairFeatures
	goldSeen := false
	for _, ca := range candsA {
		for _, cb := range candsB {
			pf := pairFeatures{
				prior: [2]float64{st.Prior(a.MentionA, ca), st.Prior(a.MentionB, cb)},
				coh:   st.Coherence(ca, cb),
				gold:  ca == a.GoldA && cb == a.GoldB,
			}
			if vec != nil {
				pf.sim = [2]float64{
					st.Similarity(vec, vecSum, ca),
					st.Similarity(vec, vecSum, cb),
				}
			}
			pf.ts = st.TypeSignature(typesOf(repo, ca), typesOf(repo, cb), a.Pattern)
			if pf.gold {
				goldSeen = true
			}
			out = append(out, pf)
		}
	}
	if !goldSeen || len(out) < 2 {
		return nil // no signal: the gold pair is missing or unambiguous
	}
	return out
}

func typesOf(repo *entityrepo.Repo, id string) []string {
	if e := repo.Get(id); e != nil {
		return entityrepo.TypeClosure(e.Types)
	}
	return nil
}

// AnnotationsFromWorld samples gold annotations from the synthetic world,
// mirroring the paper's manual annotation of 162 sentences / 203 facts
// over prominent person pages.
func AnnotationsFromWorld(w *corpus.World, maxFacts int) []Annotation {
	var out []Annotation
	for i := range w.Facts {
		if len(out) >= maxFacts {
			break
		}
		f := &w.Facts[i]
		if f.EventID >= 0 || len(f.Objects) == 0 || !f.Objects[0].IsEntity() {
			continue
		}
		subj, obj := w.Entity(f.Subject), w.Entity(f.Objects[0].EntityID)
		if subj.Emerging || obj.Emerging {
			continue
		}
		// Use an ambiguous surface form when available (the surname
		// alias), so the annotation carries a real disambiguation signal.
		mentionA := subj.Name
		if len(subj.Aliases) > 0 {
			mentionA = subj.Aliases[0]
		}
		pattern := firstPattern(w, f.Relation)
		if pattern == "" {
			continue
		}
		out = append(out, Annotation{
			MentionA: mentionA, MentionB: obj.Name,
			GoldA: subj.ID, GoldB: obj.ID,
			Pattern: pattern,
		})
	}
	return out
}

func firstPattern(w *corpus.World, relation string) string {
	if syn := w.Patterns.Get(relation); syn != nil && len(syn.Patterns) > 0 {
		return syn.Patterns[0]
	}
	return ""
}

func softplus(x float64) float64 {
	if x > 30 {
		return x
	}
	return math.Log1p(math.Exp(x))
}

func sigmoid(x float64) float64 {
	if x < -40 {
		return 0
	}
	if x > 40 {
		return 1
	}
	return 1 / (1 + math.Exp(-x))
}
