package replica

import (
	"fmt"
	"sync"
)

// HistoryChecker is the adversarial consistency oracle for replication
// tests (in the spirit of AWDIT-style isolation checking): the leader
// records every version it publishes, each replica records every
// version it verified and served, and Check asserts prefix consistency
// — every replica's observed sequence is strictly increasing, every
// observed (version, fingerprint) pair matches the leader's chain
// exactly, and no replica ever observed a version the leader never
// published. Under those invariants each replica's state history is a
// prefix of the leader's version chain (modulo versions skipped by a
// snapshot re-baseline), fingerprint-identical at every common version.
type HistoryChecker struct {
	mu        sync.Mutex
	leader    map[uint64]string
	leaderMax uint64
	conflict  error
	replicas  map[string][]observation
}

type observation struct {
	version uint64
	sha     string
}

// NewHistoryChecker returns an empty checker.
func NewHistoryChecker() *HistoryChecker {
	return &HistoryChecker{
		leader:   make(map[uint64]string),
		replicas: make(map[string][]observation),
	}
}

// RecordLeader records one published leader version and its
// fingerprint SHA. Re-recording a version with a different fingerprint
// marks the leader chain itself inconsistent (reported by Check).
func (h *HistoryChecker) RecordLeader(version uint64, sha string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if prev, ok := h.leader[version]; ok && prev != sha {
		if h.conflict == nil {
			h.conflict = fmt.Errorf("leader chain conflict at v%d: %s then %s", version, prev, sha)
		}
		return
	}
	h.leader[version] = sha
	if version > h.leaderMax {
		h.leaderMax = version
	}
}

// RecordReplica records one version a replica verified and began
// serving, in observation order.
func (h *HistoryChecker) RecordReplica(name string, version uint64, sha string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.replicas[name] = append(h.replicas[name], observation{version: version, sha: sha})
}

// Observer returns an OnVerified hook bound to the named replica.
func (h *HistoryChecker) Observer(name string) func(version uint64, sha string) {
	return func(version uint64, sha string) { h.RecordReplica(name, version, sha) }
}

// Check validates prefix consistency of every recorded replica history
// against the leader chain, returning the first violation found.
func (h *HistoryChecker) Check() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.conflict != nil {
		return h.conflict
	}
	for name, obs := range h.replicas {
		var last uint64
		for i, o := range obs {
			if i > 0 && o.version <= last {
				return fmt.Errorf("replica %s went backwards: v%d after v%d", name, o.version, last)
			}
			last = o.version
			if o.version > h.leaderMax {
				return fmt.Errorf("replica %s observed v%d beyond leader head v%d", name, o.version, h.leaderMax)
			}
			want, ok := h.leader[o.version]
			if !ok {
				return fmt.Errorf("replica %s observed v%d the leader never published", name, o.version)
			}
			if want != o.sha {
				return fmt.Errorf("replica %s diverged at v%d: leader %s, replica %s", name, o.version, want, o.sha)
			}
		}
	}
	return nil
}
