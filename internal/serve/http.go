package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"qkbfly/internal/kb/store"
)

// Answerer answers natural-language questions; internal/qa's System
// satisfies it. It is declared here (structurally) so the HTTP layer does
// not import the qa package.
type Answerer interface {
	Answer(question string) []string
}

// ContextAnswerer is the context-aware variant; when the configured
// Answerer also implements it (qa.System does), /answer builds run under
// the request context and a disconnecting client cancels them.
type ContextAnswerer interface {
	AnswerContext(ctx context.Context, question string) []string
}

// HandlerOptions tune the HTTP endpoints.
type HandlerOptions struct {
	// DefaultSource restricts retrieval when the request omits ?source=
	// ("wikipedia", "news" or "" for both).
	DefaultSource string
	// DefaultSize and MaxSize bound the ?size= document count (defaults 1
	// and 50).
	DefaultSize int
	MaxSize     int
	// Answerer serves /answer; when nil the endpoint returns 503.
	Answerer Answerer
}

// NewHandler exposes a Server over HTTP/JSON:
//
//	GET /kb?q=...&source=&size=&subject=&predicate=&object=&tau=&limit=
//	GET /answer?q=...
//	GET /stats
//	GET /healthz
//
// Every build runs under the request context, so a disconnecting client
// cancels its in-flight construction.
func NewHandler(s *Server, opt HandlerOptions) http.Handler {
	if opt.DefaultSize <= 0 {
		opt.DefaultSize = 1
	}
	if opt.MaxSize <= 0 {
		opt.MaxSize = 50
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/kb", func(w http.ResponseWriter, r *http.Request) {
		handleKB(s, opt, w, r)
	})
	mux.HandleFunc("/answer", func(w http.ResponseWriter, r *http.Request) {
		handleAnswer(opt, w, r)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if !getOnly(w, r) {
			return
		}
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !getOnly(w, r) {
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// kbResponse is the /kb JSON shape.
type kbResponse struct {
	Query           string    `json:"query"`
	Source          string    `json:"source"`
	Size            int       `json:"size"`
	Docs            []docRef  `json:"docs"`
	FactCount       int       `json:"fact_count"`
	EntityCount     int       `json:"entity_count"`
	EmergingCount   int       `json:"emerging_count"`
	ElapsedNS       int64     `json:"elapsed_ns"`
	ServedFromCache bool      `json:"served_from_cache"`
	Joined          bool      `json:"joined_inflight"`
	Facts           []factRef `json:"facts"`
}

type docRef struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

type factRef struct {
	Subject    string   `json:"subject"`
	Relation   string   `json:"relation"`
	Objects    []string `json:"objects"`
	Confidence float64  `json:"confidence"`
	DocID      string   `json:"doc_id"`
	Sentence   int      `json:"sentence"`
}

func handleKB(s *Server, opt HandlerOptions, w http.ResponseWriter, r *http.Request) {
	if !getOnly(w, r) {
		return
	}
	q := r.URL.Query()
	query := q.Get("q")
	if query == "" {
		http.Error(w, "missing required parameter q", http.StatusBadRequest)
		return
	}
	source := opt.DefaultSource
	if v, ok := q["source"]; ok {
		source = v[0]
	}
	// All parameters are validated before any engine work starts.
	size, err := intParam(q.Get("size"), opt.DefaultSize, 1)
	if err != nil {
		http.Error(w, "invalid size: "+err.Error(), http.StatusBadRequest)
		return
	}
	if size > opt.MaxSize {
		size = opt.MaxSize
	}
	limit, err := intParam(q.Get("limit"), 100, 0) // an explicit limit=0 lists no facts
	if err != nil {
		http.Error(w, "invalid limit: "+err.Error(), http.StatusBadRequest)
		return
	}
	var tau float64
	if v := q.Get("tau"); v != "" {
		tau, err = strconv.ParseFloat(v, 64)
		if err != nil {
			http.Error(w, "invalid tau: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	res, err := s.KB(r.Context(), query, source, size)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The client is gone (or gave up); nothing useful to write.
			http.Error(w, "build cancelled: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	facts := res.KB.Search(store.Query{
		Subject:   q.Get("subject"),
		Predicate: q.Get("predicate"),
		Object:    q.Get("object"),
		MinConf:   tau,
	})
	if len(facts) > limit {
		facts = facts[:limit]
	}
	resp := kbResponse{
		Query:           query,
		Source:          source,
		Size:            size,
		Docs:            []docRef{},
		FactCount:       res.KB.Len(),
		EntityCount:     len(res.KB.Entities()),
		EmergingCount:   res.KB.EmergingCount(),
		ElapsedNS:       int64(statsElapsed(res)),
		ServedFromCache: res.CacheHit,
		Joined:          res.Joined,
		Facts:           []factRef{},
	}
	for _, d := range res.Docs {
		resp.Docs = append(resp.Docs, docRef{ID: d.ID, Title: d.Title})
	}
	for _, f := range facts {
		fr := factRef{
			Subject:    f.Subject.String(),
			Relation:   f.Relation,
			Confidence: f.Confidence,
			DocID:      f.Source.DocID,
			Sentence:   f.Source.SentIndex,
		}
		for _, o := range f.Objects {
			fr.Objects = append(fr.Objects, o.String())
		}
		resp.Facts = append(resp.Facts, fr)
	}
	writeJSON(w, http.StatusOK, resp)
}

func handleAnswer(opt HandlerOptions, w http.ResponseWriter, r *http.Request) {
	if !getOnly(w, r) {
		return
	}
	if opt.Answerer == nil {
		http.Error(w, "no answerer configured", http.StatusServiceUnavailable)
		return
	}
	question := r.URL.Query().Get("q")
	if question == "" {
		http.Error(w, "missing required parameter q", http.StatusBadRequest)
		return
	}
	var answers []string
	if ca, ok := opt.Answerer.(ContextAnswerer); ok {
		answers = ca.AnswerContext(r.Context(), question)
	} else {
		answers = opt.Answerer.Answer(question)
	}
	if answers == nil {
		answers = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"question": question,
		"answers":  answers,
	})
}

func statsElapsed(res *Result) time.Duration {
	if res.Stats == nil {
		return 0
	}
	return res.Stats.Elapsed
}

func getOnly(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

// intParam parses an optional integer query parameter: absent means def,
// and malformed or below-minimum values are errors (400), never silently
// replaced.
func intParam(v string, def, min int) (int, error) {
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, err
	}
	if n < min {
		return 0, fmt.Errorf("%d is below the minimum %d", n, min)
	}
	return n, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
