package densify

import (
	"math"
	"sort"

	"qkbfly/internal/graph"
	"qkbfly/internal/nlp"
)

// Result is the output of the graph algorithm: the densified subgraph S*
// expressed as an assignment of noun phrases to entities, pronoun
// antecedents, and per-mention confidence scores (§4).
type Result struct {
	// Assignment maps NP node IDs to their disambiguated entity ID; nodes
	// absent from the map are out-of-KB (new entities).
	Assignment map[int]string
	// Antecedent maps pronoun node IDs to the NP node ID they resolve to;
	// -1 (or absence) means unresolved.
	Antecedent map[int]int
	// Confidence holds the normalized confidence score of each assigned
	// NP node (§4, "Confidence Scores").
	Confidence map[int]float64
	// Removed counts edges removed by the greedy loop (for tests).
	Removed int
	// Objective is W(S*), the final subgraph weight.
	Objective float64
}

// Reset clears a Result for reuse, keeping map capacity; callers that
// pool results (the engine scratch, the ILP translation) use it to avoid
// reallocating the three maps per document.
func (r *Result) Reset() {
	if r.Assignment == nil {
		r.Assignment = map[int]string{}
		r.Antecedent = map[int]int{}
		r.Confidence = map[int]float64{}
	}
	clear(r.Assignment)
	clear(r.Antecedent)
	clear(r.Confidence)
	r.Removed = 0
	r.Objective = 0
}

// debugExtract, when non-nil, observes each group and its intersection at
// extraction time (test hook).
var debugExtract func(grp []int, inter map[int]bool)

// state is the mutable solver state over the semantic graph. Its tables
// are indexed by node ID (dense) and all of its buffers are retained
// across documents when the state is reused through a Scratch.
type state struct {
	g      *graph.Graph
	scorer *Scorer

	// cand[np] holds alive means edges: entity node -> edge ID.
	cand []map[int]int
	// pron[p] holds alive pronoun sameAs edges: NP node -> edge ID.
	pron []map[int]int
	// npSame holds alive NP-NP sameAs edge IDs.
	npSame map[int]bool
	// relEdges are the relation edges (never removed; weights change).
	relEdges []int
	// relAt[node] lists relation edge IDs incident to the node.
	relAt [][]int

	npNodes   []int
	pronNodes []int

	// Reusable buffers (reset per document, capacity retained).
	freeMaps []map[int]int     // recycled cand/pron inner maps, cleared
	uf       graph.GroupFinder // union-find over NP nodes for groups()
	interBuf map[int]bool      // groupIntersection result buffer
	entBufA  map[int]bool      // entSet buffers (relWeight needs two at once)
	entBufB  map[int]bool
	remBuf   []removable
	candsBuf []int
}

// Scratch owns a reusable solver state (and result), so a worker that
// densifies many documents stops allocating once its buffers have grown
// to a typical document's size. The *Result returned by DensifyScratch is
// valid until the next call with the same Scratch.
type Scratch struct {
	st  state
	res Result
}

// NewScratch returns an empty densification scratch.
func NewScratch() *Scratch { return &Scratch{} }

// Densify runs the greedy constrained densest-subgraph algorithm
// (Algorithm 1) and returns the assignment, antecedents and confidences.
func Densify(g *graph.Graph, scorer *Scorer) *Result {
	return DensifyScratch(g, scorer, NewScratch())
}

// DensifyScratch is Densify with caller-owned scratch state; the returned
// Result is recycled on the next call with the same Scratch.
func DensifyScratch(g *graph.Graph, scorer *Scorer, sc *Scratch) *Result {
	st := sc.st.reset(g, scorer)
	st.initIntersect()
	st.initGenderFilter()
	res := &sc.res
	res.Reset()
	if scorer.Params.PipelineMode {
		st.solvePipeline(res)
		return res
	}
	removed := st.greedyLoop()
	st.extract(res)
	res.Removed = removed
	return res
}

// reset rebuilds the state for a new document, recycling every buffer.
func (st *state) reset(g *graph.Graph, scorer *Scorer) *state {
	st.g, st.scorer = g, scorer
	n := len(g.Nodes)
	st.cand = recycleMapTable(st.cand, &st.freeMaps, n)
	st.pron = recycleMapTable(st.pron, &st.freeMaps, n)
	if st.npSame == nil {
		st.npSame = map[int]bool{}
	}
	clear(st.npSame)
	st.relEdges = st.relEdges[:0]
	st.relAt = resizeIntLists(st.relAt, n)
	st.npNodes = st.npNodes[:0]
	st.pronNodes = st.pronNodes[:0]

	for _, gn := range g.Nodes {
		switch gn.Kind {
		case graph.NounPhraseNode:
			st.npNodes = append(st.npNodes, gn.ID)
		case graph.PronounNode:
			st.pronNodes = append(st.pronNodes, gn.ID)
		}
	}
	for _, e := range g.Edges {
		switch e.Kind {
		case graph.MeansEdge:
			m := st.cand[e.From]
			if m == nil {
				m = st.innerMap()
				st.cand[e.From] = m
			}
			m[e.To] = e.ID
		case graph.SameAsEdge:
			from, to := g.Nodes[e.From], g.Nodes[e.To]
			if from.Kind == graph.PronounNode || to.Kind == graph.PronounNode {
				p, pn := e.From, e.To
				if to.Kind == graph.PronounNode {
					p, pn = e.To, e.From
				}
				m := st.pron[p]
				if m == nil {
					m = st.innerMap()
					st.pron[p] = m
				}
				m[pn] = e.ID
			} else {
				st.npSame[e.ID] = true
			}
		case graph.RelationEdge:
			st.relEdges = append(st.relEdges, e.ID)
			st.relAt[e.From] = append(st.relAt[e.From], e.ID)
			st.relAt[e.To] = append(st.relAt[e.To], e.ID)
		}
	}
	return st
}

// innerMap pops a cleared map from the freelist (or allocates one).
func (st *state) innerMap() map[int]int {
	if n := len(st.freeMaps); n > 0 {
		m := st.freeMaps[n-1]
		st.freeMaps = st.freeMaps[:n-1]
		return m
	}
	return map[int]int{}
}

// recycleMapTable clears a node-indexed table of maps for reuse: the
// inner maps are cleared and parked on the freelist, and the table is
// re-sized to n nil slots.
func recycleMapTable(t []map[int]int, free *[]map[int]int, n int) []map[int]int {
	for i, m := range t {
		if m != nil {
			clear(m)
			*free = append(*free, m)
			t[i] = nil
		}
	}
	if cap(t) < n {
		return make([]map[int]int, n)
	}
	t = t[:n]
	for i := range t {
		t[i] = nil
	}
	return t
}

// resizeIntLists re-sizes a node-indexed table of int lists to n entries,
// truncating (but keeping) previously allocated inner lists.
func resizeIntLists(t [][]int, n int) [][]int {
	if cap(t) < n {
		grown := make([][]int, n)
		copy(grown, t)
		t = grown
	} else {
		t = t[:n]
	}
	for i := range t {
		t[i] = t[i][:0]
	}
	return t
}

// groups returns the connected components of NPs over alive NP-NP sameAs
// edges: members ascending within a group, groups ordered by root ID. The
// returned slices are scratch buffers, valid until the next groups call.
func (st *state) groups() [][]int {
	st.uf.Reset(len(st.g.Nodes))
	for _, id := range st.npNodes {
		st.uf.Add(id)
	}
	for eid := range st.npSame {
		e := st.g.Edges[eid]
		st.uf.Union(e.From, e.To)
	}
	return st.uf.Groups(st.npNodes)
}

// initIntersect applies the candidate-set intersection of Algorithm 1:
// for all noun-phrase nodes mutually connected via sameAs edges, the
// entity candidate sets are intersected (skipping empty sets, which
// denote out-of-KB names).
func (st *state) initIntersect() {
	for _, grp := range st.groups() {
		inter := st.groupIntersection(grp)
		if inter == nil {
			continue // conflict or no candidates; resolved in the loop
		}
		for _, np := range grp {
			for ent, eid := range st.cand[np] {
				if !inter[ent] {
					st.removeEdge(eid)
					delete(st.cand[np], ent)
				}
			}
		}
	}
}

// groupIntersection intersects the non-empty candidate sets of the group.
// It returns nil when the intersection is empty but at least two members
// had (disjoint) non-empty sets — a conflict the greedy loop must resolve
// by pruning sameAs edges — or when no member has candidates.
// The returned map is a scratch buffer, valid until the next call.
func (st *state) groupIntersection(grp []int) map[int]bool {
	if st.interBuf == nil {
		st.interBuf = map[int]bool{}
	}
	inter := st.interBuf
	clear(inter)
	first := true
	for _, np := range grp {
		c := st.cand[np]
		if len(c) == 0 {
			continue
		}
		if first {
			first = false
			for ent := range c {
				inter[ent] = true
			}
			continue
		}
		for ent := range inter {
			if _, ok := c[ent]; !ok {
				delete(inter, ent)
			}
		}
	}
	if first || len(inter) == 0 {
		return nil
	}
	return inter
}

// initGenderFilter implements constraint (4): a pronoun may not link to a
// noun phrase whose every entity candidate has a known gender conflicting
// with the pronoun's.
func (st *state) initGenderFilter() {
	for _, p := range st.pronNodes {
		pg := nlp.PronounGender(st.pronText(p))
		if pg == nlp.GenderUnknown {
			continue
		}
		for np, eid := range st.pron[p] {
			cands := st.cand[np]
			if len(cands) == 0 {
				continue // out-of-KB antecedent: gender unknown, allowed
			}
			ok := false
			for ent := range cands {
				eg := st.scorer.EntityGender(st.g.Nodes[ent].EntityID)
				if eg == nlp.GenderUnknown || eg == pg {
					ok = true
					break
				}
			}
			if !ok {
				st.removeEdge(eid)
				delete(st.pron[p], np)
			}
		}
	}
}

func (st *state) pronText(p int) string {
	n := st.g.Nodes[p]
	return st.scorer.Doc.Sentences[n.SentIndex].Tokens[n.Head].Text
}

func (st *state) removeEdge(eid int) { st.g.Edges[eid].Removed = true }

// entSet returns ent(node, S): for NPs the alive candidates; for pronouns
// the union over their alive antecedents (§4). The result is one of two
// rotating scratch buffers — valid until the second-next entSet call
// (relWeight needs both sides of an edge simultaneously).
func (st *state) entSet(node int) map[int]bool {
	if st.entBufA == nil {
		st.entBufA, st.entBufB = map[int]bool{}, map[int]bool{}
	}
	out := st.entBufA
	st.entBufA, st.entBufB = st.entBufB, st.entBufA
	clear(out)
	n := st.g.Nodes[node]
	switch n.Kind {
	case graph.NounPhraseNode:
		for ent := range st.cand[node] {
			out[ent] = true
		}
	case graph.PronounNode:
		for np := range st.pron[node] {
			for ent := range st.cand[np] {
				out[ent] = true
			}
		}
	}
	return out
}

// relWeight computes w(ni, nt, S) for one relation edge under the current
// candidate sets.
func (st *state) relWeight(eid int) float64 {
	e := st.g.Edges[eid]
	sa, sb := st.entSet(e.From), st.entSet(e.To)
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	w := 0.0
	for a := range sa {
		for b := range sb {
			w += st.scorer.PairWeight(st.g.Nodes[a].EntityID, st.g.Nodes[b].EntityID, e.Label)
		}
	}
	return w
}

// objective computes W(S): all alive means weights plus all relation
// weights.
func (st *state) objective() float64 {
	w := 0.0
	for _, np := range st.npNodes {
		for ent := range st.cand[np] {
			w += st.scorer.MeansWeight(st.g.Nodes[np], st.g.Nodes[ent].EntityID)
		}
	}
	for _, eid := range st.relEdges {
		w += st.relWeight(eid)
	}
	return w
}

// removable describes one edge the loop may remove this round.
type removable struct {
	edgeID       int
	kind         graph.EdgeKind
	isPronEdge   bool
	np           int // owning NP (means) or antecedent NP (pronoun sameAs)
	ent          int // entity node (means only)
	pron         int // pronoun (pronoun sameAs only)
	contribution float64
}

// greedyLoop removes the means/sameAs edge with the smallest contribution
// to the objective until all constraints hold (Algorithm 1). Weight
// recomputation is selective: only relation edges incident to the removed
// edge's nodes are recomputed, via the contribution calculation itself.
func (st *state) greedyLoop() int {
	removed := 0
	for {
		cands := st.removableEdges()
		if len(cands) == 0 {
			return removed
		}
		// Deterministic tie-breaking: order by edge ID before comparing.
		sort.Slice(cands, func(i, j int) bool { return cands[i].edgeID < cands[j].edgeID })
		best := 0
		for i := 1; i < len(cands); i++ {
			if cands[i].contribution < cands[best].contribution {
				best = i
			}
		}
		st.apply(cands[best])
		removed++
	}
}

// removableEdges lists edges whose removal is required to reach a
// consistent assignment, with their contributions.
func (st *state) removableEdges() []removable {
	out := st.remBuf[:0]
	defer func() { st.remBuf = out[:0] }()
	// Means edges of NPs with more than one candidate.
	for _, np := range st.npNodes {
		if len(st.cand[np]) <= 1 {
			continue
		}
		for ent, eid := range st.cand[np] {
			out = append(out, removable{
				edgeID: eid, kind: graph.MeansEdge, np: np, ent: ent,
				contribution: st.meansContribution(np, ent),
			})
		}
	}
	// Pronoun sameAs edges of pronouns with more than one antecedent.
	for _, p := range st.pronNodes {
		if len(st.pron[p]) <= 1 {
			continue
		}
		for np, eid := range st.pron[p] {
			out = append(out, removable{
				edgeID: eid, kind: graph.SameAsEdge, isPronEdge: true,
				pron: p, np: np,
				contribution: st.pronContribution(p, np),
			})
		}
	}
	// NP-NP sameAs edges inside conflicting groups (constraint 3 cannot
	// hold): singleton-but-different members.
	for _, grp := range st.groups() {
		if !st.groupConflict(grp) {
			continue
		}
		for eid := range st.npSame {
			e := st.g.Edges[eid]
			if inGroup(grp, e.From) && inGroup(grp, e.To) {
				out = append(out, removable{
					edgeID: eid, kind: graph.SameAsEdge, np: e.From,
					contribution: st.sameAsContribution(e.From, e.To),
				})
			}
		}
	}
	return out
}

// groupConflict reports whether the group violates constraint (3): the
// non-empty candidate sets have an empty intersection, or two members are
// textually incompatible full names ("Gwendolyn Ashcombe" and "Adrien
// Ashcombe" chained through the bare surname "Ashcombe" — the transitive
// string-match noise the densification must cut).
func (st *state) groupConflict(grp []int) bool {
	for i := 0; i < len(grp); i++ {
		for j := i + 1; j < len(grp); j++ {
			if textConflict(st.g.Nodes[grp[i]].Text, st.g.Nodes[grp[j]].Text) {
				return true
			}
		}
	}
	nonEmpty := 0
	for _, np := range grp {
		if len(st.cand[np]) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		return false
	}
	return st.groupIntersection(grp) == nil
}

// TextConflict reports whether two mention surfaces cannot name the same
// entity: both are multi-token and neither's token set contains the
// other's. Exported for the ILP translation, which needs the same guard.
func TextConflict(a, b string) bool { return textConflict(a, b) }

// textConflict reports whether two mention surfaces cannot name the same
// entity: both are multi-token and neither's token set contains the
// other's.
func textConflict(a, b string) bool {
	ta, tb := splitLower(a), splitLower(b)
	if len(ta) < 2 || len(tb) < 2 {
		return false
	}
	return !tokenSubset(ta, tb) && !tokenSubset(tb, ta)
}

func tokenSubset(small, big []string) bool {
	set := map[string]bool{}
	for _, w := range big {
		set[w] = true
	}
	for _, w := range small {
		if !set[w] {
			return false
		}
	}
	return true
}

func inGroup(grp []int, node int) bool {
	for _, g := range grp {
		if g == node {
			return true
		}
	}
	return false
}

// meansContribution is c(x,y,S) = W(S) - W(S') for removing a means edge:
// the means weight itself plus the relation-weight terms that involve the
// entity at this NP (and through pronouns linked to this NP).
func (st *state) meansContribution(np, ent int) float64 {
	entityID := st.g.Nodes[ent].EntityID
	c := st.scorer.MeansWeight(st.g.Nodes[np], entityID)
	c += st.relTermsFor(np, ent)
	// Pronouns that inherit this candidate (only if no other antecedent
	// supplies the same entity).
	for _, p := range st.pronNodes {
		if _, linked := st.pron[p][np]; !linked {
			continue
		}
		if st.entitySuppliedByOther(p, np, ent) {
			continue
		}
		c += st.relTermsFor(p, ent)
	}
	return c
}

// relTermsFor sums the pair-weight terms of all relation edges at node
// that involve candidate entity ent on node's side.
func (st *state) relTermsFor(node, ent int) float64 {
	entityID := st.g.Nodes[ent].EntityID
	c := 0.0
	for _, eid := range st.relAt[node] {
		e := st.g.Edges[eid]
		other := e.From
		if other == node {
			other = e.To
		}
		for b := range st.entSet(other) {
			c += st.scorer.PairWeight(entityID, st.g.Nodes[b].EntityID, e.Label)
		}
	}
	return c
}

// entitySuppliedByOther reports whether pronoun p still receives entity
// ent from an antecedent other than np.
func (st *state) entitySuppliedByOther(p, np, ent int) bool {
	for other := range st.pron[p] {
		if other == np {
			continue
		}
		if _, ok := st.cand[other][ent]; ok {
			return true
		}
	}
	return false
}

// pronContribution is the objective loss from unlinking pronoun p from
// antecedent np: the relation terms for entities np exclusively supplies,
// plus a small recency preference (closer antecedents contribute more).
func (st *state) pronContribution(p, np int) float64 {
	c := 0.0
	for ent := range st.cand[np] {
		if !st.entitySuppliedByOther(p, np, ent) {
			c += st.relTermsFor(p, ent)
		}
	}
	pn, nn := st.g.Nodes[p], st.g.Nodes[np]
	dist := float64(pn.SentIndex-nn.SentIndex) + 0.01*float64(abs(pn.Head-nn.Head))
	c += 1e-3 / (1 + dist)
	// Salience: antecedents that act as clause subjects elsewhere (they
	// have outgoing relation edges) are preferred over object mentions.
	for _, eid := range st.relAt[np] {
		if st.g.Edges[eid].From == np {
			c += 2e-3
			break
		}
	}
	return c
}

// sameAsContribution scores an NP-NP sameAs edge by the best coherence
// between the two sides' candidates plus a token-overlap bonus: the edge
// that binds least coherent mentions is cut first.
func (st *state) sameAsContribution(a, b int) float64 {
	best := 0.0
	for ea := range st.cand[a] {
		for eb := range st.cand[b] {
			coh := st.scorer.coherence(st.g.Nodes[ea].EntityID, st.g.Nodes[eb].EntityID)
			if coh > best {
				best = coh
			}
		}
	}
	return best + 1e-3*float64(sharedTokens(st.g.Nodes[a].Text, st.g.Nodes[b].Text))
}

// apply removes the chosen edge and updates the state.
func (st *state) apply(r removable) {
	st.removeEdge(r.edgeID)
	switch {
	case r.kind == graph.MeansEdge:
		delete(st.cand[r.np], r.ent)
	case r.isPronEdge:
		delete(st.pron[r.pron], r.np)
	default:
		delete(st.npSame, r.edgeID)
	}
}

// solvePipeline is the QKBfly-pipeline configuration: each mention is
// disambiguated independently by its means weight (no joint inference),
// and pronouns resolve to the nearest compatible antecedent.
func (st *state) solvePipeline(res *Result) {
	for _, np := range st.npNodes {
		bestEnt, bestW, total := -1, 0.0, 0.0
		ents := st.candsBuf[:0]
		for ent := range st.cand[np] {
			ents = append(ents, ent)
		}
		st.candsBuf = ents
		sort.Ints(ents)
		for _, ent := range ents {
			w := st.scorer.MeansWeight(st.g.Nodes[np], st.g.Nodes[ent].EntityID)
			total += w
			if bestEnt < 0 || w > bestW {
				bestEnt, bestW = ent, w
			}
		}
		if bestEnt >= 0 {
			res.Assignment[np] = st.g.Nodes[bestEnt].EntityID
			if total > 0 {
				res.Confidence[np] = bestW / total
			} else {
				res.Confidence[np] = 1.0 / float64(len(ents))
			}
		}
	}
	for _, p := range st.pronNodes {
		best, bestDist := -1, math.MaxInt
		for np := range st.pron[p] {
			pn, nn := st.g.Nodes[p], st.g.Nodes[np]
			d := (pn.SentIndex-nn.SentIndex)*1000 + abs(pn.Head-nn.Head)
			if d < bestDist {
				best, bestDist = np, d
			}
		}
		if best >= 0 {
			res.Antecedent[p] = best
		}
	}
	res.Objective = st.objective()
}

// extract reads the final assignment out of a consistent state and
// computes the §4 confidence scores.
func (st *state) extract(res *Result) {
	// Group assignment: the intersection is now a single entity (or none).
	for _, grp := range st.groups() {
		inter := st.groupIntersection(grp)
		if debugExtract != nil {
			debugExtract(grp, inter)
		}
		var entNode = -1
		for ent := range inter {
			entNode = ent
		}
		if entNode < 0 {
			continue
		}
		entityID := st.g.Nodes[entNode].EntityID
		for _, np := range grp {
			res.Assignment[np] = entityID
			res.Confidence[np] = st.confidence(np, entNode)
		}
	}
	for _, p := range st.pronNodes {
		for np := range st.pron[p] {
			res.Antecedent[p] = np
		}
	}
	res.Objective = st.objective()
}

// confidence implements the normalized confidence score of §4:
// c(ni,eij,S*) over the sum of contributions when substituting each
// original candidate.
func (st *state) confidence(np, chosen int) float64 {
	// Original candidates: every means edge of np in the full graph.
	cands := st.candsBuf[:0]
	for _, eid := range st.g.EdgesAt(np) {
		e := st.g.Edges[eid]
		if e.Kind == graph.MeansEdge && e.From == np {
			cands = append(cands, e.To)
		}
	}
	st.candsBuf = cands
	if len(cands) <= 1 {
		return 1
	}
	num := st.substitutionContribution(np, chosen)
	den := 0.0
	for _, ent := range cands {
		den += st.substitutionContribution(np, ent)
	}
	if den <= 0 {
		return 1 / float64(len(cands))
	}
	return num / den
}

// substitutionContribution computes c(ni, eit, St) where St substitutes
// candidate ent at np, holding all other assignments fixed.
func (st *state) substitutionContribution(np, ent int) float64 {
	entityID := st.g.Nodes[ent].EntityID
	c := st.scorer.MeansWeight(st.g.Nodes[np], entityID)
	for _, eid := range st.relAt[np] {
		e := st.g.Edges[eid]
		other := e.From
		if other == np {
			other = e.To
		}
		for b := range st.entSet(other) {
			if b == ent && other == np {
				continue
			}
			c += st.scorer.PairWeight(entityID, st.g.Nodes[b].EntityID, e.Label)
		}
	}
	return c
}

func sharedTokens(a, b string) int {
	am := map[string]bool{}
	for _, w := range splitLower(a) {
		am[w] = true
	}
	n := 0
	for _, w := range splitLower(b) {
		if am[w] {
			n++
		}
	}
	return n
}

func splitLower(s string) []string {
	var out []string
	w := make([]rune, 0, 16)
	flush := func() {
		if len(w) > 0 {
			out = append(out, string(w))
			w = w[:0]
		}
	}
	for _, r := range s {
		if r == ' ' || r == '\t' {
			flush()
			continue
		}
		if r >= 'A' && r <= 'Z' {
			r += 'a' - 'A'
		}
		w = append(w, r)
	}
	flush()
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
