package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"qkbfly/internal/corpus"
	"qkbfly/internal/kb/store"
	"qkbfly/internal/openie"
)

// Table5Row is one Open IE system's result.
type Table5Row struct {
	Method       string
	Precision    float64
	CI           float64
	Extractions  int
	AvgMsPerSent float64
}

// Table5Result is the Open IE component comparison of §7.1.
type Table5Result struct {
	Rows      []Table5Row
	Sentences int
}

// RunTable5 reproduces Table 5: the Open IE systems on a Reverb-style
// sentence sample. nSentences are drawn from the world's mixed text
// (articles, news, fiction), mirroring the random Yahoo sample.
func RunTable5(env *Env, nSentences, sampleSize int) *Table5Result {
	sents, byDoc := sampleSentences(env, nSentences)
	res := &Table5Result{Sentences: len(sents)}

	extractors := []openie.Extractor{
		openie.NewClausIE(env.World.Repo),
		openie.NewQKBflyOpenIE(env.World.Repo),
		openie.NewReverb(),
		openie.NewOllie(env.World.Repo),
		openie.NewOpenIE42(env.World.Repo),
	}
	for xi, ex := range extractors {
		var all []store.Fact
		start := time.Now()
		for i, s := range sents {
			for _, e := range ex.ExtractSentence(s.text, i) {
				f := store.Fact{
					Subject:  store.Value{Literal: e.Subject},
					Relation: e.Relation, Pattern: e.Relation,
					Confidence: 1,
					Source:     store.Provenance{DocID: s.docID, SentIndex: s.sentIndex},
				}
				for _, o := range e.Objects {
					f.Objects = append(f.Objects, store.Value{Literal: o})
				}
				all = append(all, f)
			}
		}
		elapsed := time.Since(start)
		a := env.Assessor.AssessAt(all, byDoc, sampleSize, int64(500+xi))
		res.Rows = append(res.Rows, Table5Row{
			Method:       ex.Name(),
			Precision:    a.Precision,
			CI:           a.CI,
			Extractions:  len(all),
			AvgMsPerSent: float64(elapsed.Milliseconds()) / float64(len(sents)),
		})
	}
	return res
}

type sampledSentence struct {
	text      string
	docID     string
	sentIndex int
}

// sampleSentences draws a deterministic sample of sentences across the
// evaluation corpora, returning the generated documents by ID for the
// sentence-level oracle.
func sampleSentences(env *Env, n int) ([]sampledSentence, map[string]*corpus.GenDoc) {
	var pool []sampledSentence
	byDoc := map[string]*corpus.GenDoc{}
	add := func(gds []*corpus.GenDoc) {
		for _, gd := range gds {
			byDoc[gd.Doc.ID] = gd
			for si := range gd.Doc.Sentences {
				pool = append(pool, sampledSentence{
					text:  gd.Doc.Sentences[si].Text,
					docID: gd.Doc.ID, sentIndex: si,
				})
			}
		}
	}
	add(env.World.WikiDataset(60))
	add(env.World.NewsDataset(1))
	add(env.World.WikiaDataset(env.World.Config.WikiaPages))
	rng := rand.New(rand.NewSource(42))
	idx := rng.Perm(len(pool))
	if len(idx) > n {
		idx = idx[:n]
	}
	out := make([]sampledSentence, 0, len(idx))
	for _, i := range idx {
		out = append(out, pool[i])
	}
	return out, byDoc
}

// String renders Table 5.
func (r *Table5Result) String() string {
	header := []string{"Method", "Precision", "#Extract.", "ms/sentence"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Method, pm(row.Precision, row.CI),
			fmt.Sprintf("%d", row.Extractions),
			fmt.Sprintf("%.2f", row.AvgMsPerSent),
		})
	}
	return fmt.Sprintf("Table 5: Open IE component (%d sentences)\n", r.Sentences) + renderTable(header, rows)
}
