package engine_test

import (
	"context"
	"testing"

	"qkbfly/internal/engine"
)

// TestPooledBuildMatchesUnpooledReference is the correctness invariant of
// the per-worker scratch arena: a pooled parallel build (p=4, workers
// recycling annotation buffers, graph arenas, solver state and canon
// union-find across documents) must be byte-identical to a fresh serial
// reference that allocates all stage state anew for every document.
// Repeated runs keep asserting against the same fingerprint, so state
// leaking across a worker's documents (a stale buffer, an unreset map)
// shows up as a fingerprint mismatch.
func TestPooledBuildMatchesUnpooledReference(t *testing.T) {
	f := getFixture(t)
	const nDocs = 16
	want := f.serialReference(f.docs(nDocs)).Fingerprint()
	if want == "" {
		t.Fatal("unpooled reference produced an empty KB")
	}
	eng := engine.New(f.config(), engine.WithParallelism(4))
	for run := 0; run < 3; run++ {
		kb, _, err := eng.Run(context.Background(), f.docs(nDocs))
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if got := kb.Fingerprint(); got != want {
			t.Fatalf("run %d: pooled p=4 build differs from unpooled serial reference", run)
		}
	}
}

// TestPooledShardsIndependentOfProcessingOrder guards the shard cache's
// assumption under pooling: the shard built for a document must not depend
// on which documents the worker's scratch processed before it. A single
// worker processes the batch forward and backward; the per-document shard
// fingerprints must agree.
func TestPooledShardsIndependentOfProcessingOrder(t *testing.T) {
	f := getFixture(t)
	const nDocs = 10
	eng := engine.New(f.config(), engine.WithParallelism(1))

	forward := f.docs(nDocs)
	shardsFwd, _, err := eng.RunShards(context.Background(), forward)
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[string]string, nDocs)
	for i, d := range forward {
		if shardsFwd[i] == nil {
			t.Fatalf("nil shard for doc %d", i)
		}
		byID[d.ID] = shardsFwd[i].Fingerprint()
	}

	backward := f.docs(nDocs)
	for i, j := 0, len(backward)-1; i < j; i, j = i+1, j-1 {
		backward[i], backward[j] = backward[j], backward[i]
	}
	shardsBwd, _, err := eng.RunShards(context.Background(), backward)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range backward {
		want, ok := byID[d.ID]
		if !ok {
			t.Fatalf("doc %s missing from forward run", d.ID)
		}
		if got := shardsBwd[i].Fingerprint(); got != want {
			t.Errorf("doc %s: shard differs between forward and backward processing order", d.ID)
		}
	}
}
