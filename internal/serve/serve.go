// Package serve is the long-lived serving layer over QKBfly: the process
// that survives between queries so on-the-fly KB construction (Nguyen et
// al., PVLDB 2017) does not start from scratch every time.
//
// A Server wraps a qkbfly.System behind three reuse mechanisms:
//
//   - a query cache: finished KBs keyed by normalized query + build
//     options, with LRU capacity and TTL eviction, each entry stamped
//     with its KB.Fingerprint();
//   - a singleflight group: concurrent identical queries collapse onto
//     one engine run and share its result;
//   - a shard cache: the engine's per-document shards are deterministic,
//     so a query whose retrieved documents were already processed (by
//     any earlier query, or by a session) skips the pipeline for them.
//     Shards are cached as sealed, immutable store.Segments — the same
//     representation session merge trees are made of;
//   - a run cache: partial merges of adjacent segments are
//     content-addressed and reused, so overlapping queries, sessions
//     sliding over the same documents, and repeated KBForDocs calls
//     share merge work, not just per-document pipeline work.
//
// Because segment merging is order- and bracketing-deterministic, every
// path — cold build, query-cache hit, singleflight join, segment
// re-merge through any run-cache hit pattern — yields a byte-identical
// KB for the same query.
//
// Reuse is accounted through a stats.CounterSet (hits, misses,
// inflight joins, shard reuses, evictions, time saved); KBs handed out
// by the Server are shared across callers and must be treated read-only.
package serve

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"time"

	"qkbfly"
	"qkbfly/internal/engine"
	"qkbfly/internal/kb/store"
	"qkbfly/internal/nlp"
	"qkbfly/internal/query"
	"qkbfly/internal/stats"
)

// Counter names exposed through Server.Stats.
const (
	// CounterQueryHits / CounterQueryMisses count query-cache lookups;
	// CounterInflightJoins counts requests coalesced onto an in-flight
	// duplicate build by the singleflight group.
	CounterQueryHits     = "query_hits"
	CounterQueryMisses   = "query_misses"
	CounterInflightJoins = "inflight_joins"
	// CounterShardHits counts per-document shards reused from earlier
	// queries; CounterShardMisses counts shards that had to be built.
	CounterShardHits   = "shard_hits"
	CounterShardMisses = "shard_misses"
	// CounterRunHits / CounterRunMisses count partial-merge (multi-shard
	// run) reuses across sessions and queries.
	CounterRunHits   = "run_hits"
	CounterRunMisses = "run_misses"
	// CounterPatternHits / CounterPatternMisses count pattern-query result
	// cache lookups (keyed by normalized pattern + snapshot content
	// identity); CounterPatternJoins counts requests coalesced onto an
	// in-flight identical evaluation.
	CounterPatternHits   = "pattern_hits"
	CounterPatternMisses = "pattern_misses"
	CounterPatternJoins  = "pattern_joins"
	// CounterPatternMaintained counts cached pattern answers rolled
	// forward through a published delta (served warm across an ingest
	// without recomputation); CounterPatternMaintainFallbacks counts
	// entries that exceeded the maintenance work budget (or carry a row
	// limit) and were dropped to recompute on next read instead.
	CounterPatternMaintained        = "pattern_maintained"
	CounterPatternMaintainFallbacks = "pattern_maintain_fallbacks"
	// CounterEngineRuns counts invocations of the construction pipeline
	// (a warm query performs zero); CounterEngineDocs the documents those
	// runs processed.
	CounterEngineRuns = "engine_runs"
	CounterEngineDocs = "engine_docs"
	// Eviction counters, split by cache and by cause.
	CounterQueryEvictions    = "query_evictions"
	CounterQueryTTLEvictions = "query_ttl_evictions"
	CounterShardEvictions    = "shard_evictions"
	CounterShardTTLEvictions = "shard_ttl_evictions"
	// Saved-time counters (nanoseconds). Query-cache hits credit the full
	// per-stage cost of the cached build; shard reuses credit the per-doc
	// build time of each reused shard.
	CounterSavedTotalNS        = "saved_total_ns"
	CounterSavedAnnotateNS     = "saved_annotate_ns"
	CounterSavedGraphNS        = "saved_graph_ns"
	CounterSavedDensifyNS      = "saved_densify_ns"
	CounterSavedCanonicalizeNS = "saved_canonicalize_ns"
	CounterSavedShardNS        = "saved_shard_ns"
	// Replication (leader side): CounterDeltaStreams counts /deltas
	// subscriptions ever served (a non-zero value marks the process a
	// leader in /healthz); CounterDeltaStreamsActive is the live-stream
	// gauge (+1/-1 around each follow loop); CounterDeltaRecords the
	// fingerprint-stamped records shipped.
	CounterDeltaStreams       = "delta_streams"
	CounterDeltaStreamsActive = "delta_streams_active"
	CounterDeltaRecords       = "delta_records"
)

// Backend is the slice of qkbfly.System the Server is built on: document
// retrieval and per-document shard construction. Tests substitute fakes
// to control latency and blocking.
type Backend interface {
	// Retrieve returns the documents for a query; see qkbfly.System.Retrieve.
	Retrieve(query, source string, size int) []*nlp.Document
	// BuildShardsContext builds one deterministic KB shard per document;
	// see qkbfly.System.BuildShardsContext.
	BuildShardsContext(ctx context.Context, docs []*nlp.Document, opts ...qkbfly.Option) ([]*store.KB, *qkbfly.BuildStats, error)
}

// Options tune a Server's caches.
type Options struct {
	// Capacity is the maximum number of query-cache entries (finished
	// KBs); <= 0 means 128.
	Capacity int
	// ShardCapacity is the maximum number of cached per-document shards;
	// <= 0 means 1024.
	ShardCapacity int
	// RunCapacity is the maximum number of cached partial merges
	// (multi-shard runs); <= 0 means 256.
	RunCapacity int
	// PatternCapacity is the maximum number of cached pattern-query
	// results (QueryPattern); <= 0 means 256.
	PatternCapacity int
	// TTL expires cache entries (query and shard) this long after
	// insertion; 0 means no time-based expiry.
	TTL time.Duration
	// Clock supplies the time used for TTL bookkeeping; nil means
	// time.Now. Tests inject a fake clock so eviction is exercised
	// without sleeping. (Elapsed-time measurements always use the real
	// monotonic clock.)
	Clock func() time.Time
}

// Result is one served KB build.
type Result struct {
	KB   *store.KB
	Docs []*nlp.Document
	// Stats is the accounting of the engine work behind this result. For
	// a query-cache hit it is a copy of the cold build's stats; for a
	// shard-reuse build, PerDocElapsed reports each reused shard's
	// original build time at its document position.
	Stats *qkbfly.BuildStats
	// CacheHit reports the result came straight from the query cache;
	// Joined that it was coalesced onto another request's in-flight build.
	CacheHit bool
	Joined   bool
}

// queryEntry is one finished KB in the query cache.
type queryEntry struct {
	kb          *store.KB
	docs        []*nlp.Document
	bs          *qkbfly.BuildStats
	fingerprint string // KB.Fingerprint() at insertion, for identity checks
}

// Server is the long-lived serving layer. It is safe for concurrent use.
type Server struct {
	backend  Backend
	opt      Options
	counters *stats.CounterSet

	mu       sync.Mutex // guards queries, shards, runs and patterns
	queries  *lruCache  // query key   -> *queryEntry
	shards   *lruCache  // doc key     -> *store.Segment (sealed shard)
	runs     *lruCache  // combined id -> *store.Segment (partial merge)
	patterns *lruCache  // cid+pattern key -> *patternEntry (see serve_query.go)
	flight   *flightGroup[*Result]
	pflight  *flightGroup[[]query.Row]

	// persistStats, when set (SetPersistStats), supplies the durable
	// segment store's counters for /stats — blob writeback, fault-ins,
	// demotions, recovery. Guarded by mu.
	persistStats func() map[string]int64
}

// New returns a Server over the backend (normally a *qkbfly.System).
func New(backend Backend, opt Options) *Server {
	if opt.Capacity <= 0 {
		opt.Capacity = 128
	}
	if opt.ShardCapacity <= 0 {
		opt.ShardCapacity = 1024
	}
	if opt.RunCapacity <= 0 {
		opt.RunCapacity = 256
	}
	if opt.PatternCapacity <= 0 {
		opt.PatternCapacity = 256
	}
	if opt.Clock == nil {
		opt.Clock = time.Now
	}
	return &Server{
		backend:  backend,
		opt:      opt,
		counters: stats.NewCounterSet(),
		queries:  newLRU(opt.Capacity),
		shards:   newLRU(opt.ShardCapacity),
		runs:     newLRU(opt.RunCapacity),
		patterns: newLRU(opt.PatternCapacity),
		flight:   newFlightGroup[*Result](),
		pflight:  newFlightGroup[[]query.Row](),
	}
}

// Counters exposes the serving counters (read with Get/Snapshot).
func (s *Server) Counters() *stats.CounterSet { return s.counters }

// HasBackend reports whether this server can run the construction
// pipeline (false on a follower daemon, which only replicates).
func (s *Server) HasBackend() bool { return s.backend != nil }

// Snapshot is a point-in-time view of the serving state for /stats.
// Each cache reports occupancy alongside its configured capacity, so
// operators can read cache pressure (entries at capacity means the LRU
// is cycling), not just hit ratios.
type Snapshot struct {
	Counters        map[string]int64 `json:"counters"`
	QueryEntries    int              `json:"query_entries"`
	QueryCapacity   int              `json:"query_capacity"`
	ShardEntries    int              `json:"shard_entries"`
	ShardCapacity   int              `json:"shard_capacity"`
	RunEntries      int              `json:"run_entries"`
	RunCapacity     int              `json:"run_capacity"`
	PatternEntries  int              `json:"pattern_entries"`
	PatternCapacity int              `json:"pattern_capacity"`
	// Persist carries the durable segment store's counters when the
	// daemon runs with -data-dir (blobs written/loaded, demotions,
	// resident bytes, recovery figures); absent otherwise.
	Persist map[string]int64 `json:"persist,omitempty"`
}

// SetPersistStats wires the durable store's counter snapshot into
// Stats/(/stats). Pass nil to detach.
func (s *Server) SetPersistStats(fn func() map[string]int64) {
	s.mu.Lock()
	s.persistStats = fn
	s.mu.Unlock()
}

// Stats returns the current counters and cache occupancy.
func (s *Server) Stats() Snapshot {
	s.mu.Lock()
	q, sh, rn, pt := s.queries.len(), s.shards.len(), s.runs.len(), s.patterns.len()
	ps := s.persistStats
	s.mu.Unlock()
	var persist map[string]int64
	if ps != nil {
		persist = ps()
	}
	counters := s.counters.Snapshot()
	// Access-path selection is accounted process-wide by the query
	// engine (per-frame, not per-server); fold it into the same map so
	// /stats shows index usage next to the cache counters.
	counters["index_pos_scans"], counters["index_full_scans"] = query.IndexCounters()
	return Snapshot{
		Counters:        counters,
		Persist:         persist,
		QueryEntries:    q,
		QueryCapacity:   s.opt.Capacity,
		ShardEntries:    sh,
		ShardCapacity:   s.opt.ShardCapacity,
		RunEntries:      rn,
		RunCapacity:     s.opt.RunCapacity,
		PatternEntries:  pt,
		PatternCapacity: s.opt.PatternCapacity,
	}
}

// KB serves the on-the-fly KB for a query: query cache, then
// singleflight, then shard-cache-assisted construction. On error (e.g. a
// cancelled build) the Result still carries the KB over the processed
// prefix, and nothing is cached at the query level.
//
// Coalesced duplicates run under the leader's context (the usual
// singleflight tradeoff): if the leading request is cancelled mid-build,
// joiners receive its error too — nothing is cached, so their retry
// rebuilds. A joiner's own cancellation only detaches that joiner.
func (s *Server) KB(ctx context.Context, query, source string, size int, opts ...qkbfly.Option) (*Result, error) {
	key := queryKey(query, source, size, opts)
	if e := s.lookupQuery(key); e != nil {
		s.recordQueryHit(e)
		return &Result{KB: e.kb, Docs: e.docs, Stats: copyStats(e.bs), CacheHit: true}, nil
	}
	fr, joined, err := s.flight.do(ctx, key, func() *flightResult[*Result] {
		// Double-check: a previous leader may have filled the cache
		// between our miss and acquiring the flight.
		if e := s.lookupQuery(key); e != nil {
			s.recordQueryHit(e)
			return &flightResult[*Result]{res: &Result{KB: e.kb, Docs: e.docs, Stats: copyStats(e.bs), CacheHit: true}}
		}
		s.counters.Add(CounterQueryMisses, 1)
		docs := s.backend.Retrieve(query, source, size)
		kb, bs, err := s.buildFromShards(ctx, docs, opts)
		res := &Result{KB: kb, Docs: docs, Stats: bs}
		if err == nil {
			// The cached entry keeps its own copy of the accounting so a
			// caller mutating res.Stats cannot corrupt later hits.
			s.storeQuery(key, &queryEntry{kb: kb, docs: docs, bs: copyStats(bs), fingerprint: kb.Fingerprint()})
		}
		return &flightResult[*Result]{res: res, err: err}
	})
	if err != nil {
		// The joiner's own context was cancelled while waiting.
		return &Result{KB: store.New(), Stats: &qkbfly.BuildStats{PerDocElapsed: []time.Duration{}}, Joined: true}, err
	}
	if joined {
		s.counters.Add(CounterInflightJoins, 1)
		res := *fr.res
		if res.Stats != nil {
			// Each joiner gets its own accounting copy; the KB and docs
			// are shared read-only like on the cache-hit path.
			res.Stats = copyStats(res.Stats)
		}
		res.Joined = true
		return &res, fr.err
	}
	return fr.res, fr.err
}

// KBForDocs builds the KB for an already-retrieved document set through
// the shard cache: cached shards are reused, only missing documents go
// through the pipeline, and everything merges in document order. This is
// the path internal/qa plugs into (qa retrieves its own documents).
func (s *Server) KBForDocs(ctx context.Context, docs []*nlp.Document, opts ...qkbfly.Option) (*store.KB, *qkbfly.BuildStats, error) {
	return s.buildFromShards(ctx, docs, opts)
}

// buildFromShards assembles the merged KB for docs through the segment
// and run caches and compacts the accounting to processed documents.
// Segments fold by pairwise reduction through the caching merge, so
// overlapping document sets reuse partial merges, and the final run
// materializes into the same flat KB a document-order engine merge
// produces.
func (s *Server) buildFromShards(ctx context.Context, docs []*nlp.Document, opts []qkbfly.Option) (*store.KB, *qkbfly.BuildStats, error) {
	start := time.Now()
	segs, times, bs, buildErr := s.assembleSegments(ctx, docs, opts)
	mergeStart := time.Now()
	live := make([]*store.Segment, 0, len(segs))
	for _, seg := range segs {
		if seg != nil {
			live = append(live, seg)
		}
	}
	kb := store.MaterializeRuns([]*store.Segment{s.foldSegments(live)})
	bs.StageElapsed.Merge = time.Since(mergeStart)
	for i, seg := range segs {
		if seg == nil {
			continue
		}
		bs.PerDocElapsed = append(bs.PerDocElapsed, times[i])
	}
	bs.Elapsed = time.Since(start)
	return kb, bs, buildErr
}

// foldSegments reduces an ordered run of segments to one by pairwise
// merging through the run cache (nil for an empty input). Any bracketing
// yields identical content; pairwise reduction maximizes sharing with
// other folds over overlapping subsequences.
func (s *Server) foldSegments(segs []*store.Segment) *store.Segment {
	if len(segs) == 0 {
		return nil
	}
	for len(segs) > 1 {
		next := make([]*store.Segment, 0, (len(segs)+1)/2)
		for i := 0; i+1 < len(segs); i += 2 {
			next = append(next, s.MergeSegments(segs[i], segs[i+1]))
		}
		if len(segs)%2 == 1 {
			next = append(next, segs[len(segs)-1])
		}
		segs = next
	}
	return segs[0]
}

// MergeSegments is the caching segment merge (qkbfly.SegmentMerger):
// partial merges are content-addressed by their combined segment
// identity and reused across sessions and queries. Uncacheable inputs
// (anonymous documents) merge without touching the cache.
func (s *Server) MergeSegments(a, b *store.Segment) *store.Segment {
	key := store.CombinedSegmentID(a, b)
	if key == "" {
		return store.MergeSegments(a, b)
	}
	if run := s.lookupRun(key); run != nil {
		s.counters.Add(CounterRunHits, 1)
		return run
	}
	s.counters.Add(CounterRunMisses, 1)
	m := store.MergeSegments(a, b)
	s.storeRun(key, m)
	return m
}

// BuildShardsContext is the server-side implementation of
// qkbfly.ShardBuilder: one deterministic KB shard per document,
// materialized from the segment cache. Sessions prefer
// BuildSegmentsContext (qkbfly.SegmentBuilder), which hands out the
// sealed segments directly; this form exists for callers that still
// want flat per-document KBs and pays one materialization per shard.
func (s *Server) BuildShardsContext(ctx context.Context, docs []*nlp.Document, opts ...qkbfly.Option) ([]*store.KB, *qkbfly.BuildStats, error) {
	segs, bs, err := s.BuildSegmentsContext(ctx, docs, opts...)
	shards := make([]*store.KB, len(segs))
	for i, seg := range segs {
		if seg != nil {
			shards[i] = store.MaterializeRuns([]*store.Segment{seg})
		}
	}
	return shards, bs, err
}

// BuildSegmentsContext is the server-side implementation of
// qkbfly.SegmentBuilder: one sealed, immutable segment per document,
// served from the per-document segment cache when possible and built
// (and cached) otherwise. segs[i] is nil for documents not reached
// before cancellation; PerDocElapsed is doc-aligned, reporting a cached
// segment's original build time at its position — the same contract as
// engine.RunShards.
//
// This is what lets a qkbfly.Session opened on the server (OpenSession)
// share work with every query and every other session: a document
// processed anywhere under the same build options folds straight from
// cache on ingest, an ingested document warms the cache for later
// queries, and the session merge tree's partial merges flow through the
// server's run cache (MergeSegments).
func (s *Server) BuildSegmentsContext(ctx context.Context, docs []*nlp.Document, opts ...qkbfly.Option) ([]*store.Segment, *qkbfly.BuildStats, error) {
	if len(docs) == 0 {
		return nil, &qkbfly.BuildStats{Parallelism: 1, PerDocElapsed: []time.Duration{}}, ctx.Err()
	}
	start := time.Now()
	segs, times, bs, err := s.assembleSegments(ctx, docs, opts)
	bs.PerDocElapsed = times
	bs.Elapsed = time.Since(start)
	return segs, bs, err
}

// OpenSession opens an incremental ingestion session whose shard builds
// go through this server's per-document shard cache (see
// BuildShardsContext). The server does not track the session beyond that:
// close it with Session.Close when done.
//
// The shard cache assumes a document ID identifies immutable content. To
// replace a document's content under the same ID, call InvalidateShards
// alongside Session.Evict before re-ingesting (the daemon's /evict does).
func (s *Server) OpenSession(opts qkbfly.SessionOptions) *qkbfly.Session {
	return qkbfly.Open(s, opts)
}

// InvalidateShards drops every cached segment of the given document IDs
// (across all build-option variants) and returns how many entries were
// removed — the cache-coherence hook for replacing a document's content
// under a reused ID. Partial merges are content-addressed by their leaf
// identities, and a deep run's identity may be hashed, so the run cache
// cannot be invalidated per document: any removal clears it wholesale
// (it re-warms on the next folds).
func (s *Server) InvalidateShards(docIDs ...string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for _, id := range docIDs {
		for _, key := range s.shards.keysWithPrefix(id + "\x00") {
			s.shards.remove(key)
			removed++
		}
	}
	// The run cache clears even when no leaf was found: the leaf may have
	// been LRU- or TTL-evicted after a run containing it was cached, and
	// a stale run under the document's unchanged identity would otherwise
	// serve the replaced content.
	if len(docIDs) > 0 {
		s.runs = newLRU(s.opt.RunCapacity)
	}
	return removed
}

// assembleSegments resolves one sealed segment per document — cache hits
// first, one backend build for the misses — returning doc-aligned
// segments and per-document times plus the accounting of the engine work
// performed. Freshly built shards are sealed and cached even when the
// run was cancelled mid-batch (each processed shard is complete and
// deterministic); the query-level entry is the caller's decision.
func (s *Server) assembleSegments(ctx context.Context, docs []*nlp.Document, opts []qkbfly.Option) ([]*store.Segment, []time.Duration, *qkbfly.BuildStats, error) {
	okey := resolveOptions(opts).key()
	segs := make([]*store.Segment, len(docs))
	times := make([]time.Duration, len(docs))
	var missing []*nlp.Document
	var missingIdx []int
	for i, d := range docs {
		// Anonymous documents bypass the cache entirely: an empty ID
		// cannot identify a shard across requests, and two distinct
		// anonymous documents must never collide on one cache key.
		var se *store.Segment
		if d.ID != "" {
			se = s.lookupShard(shardKey(d.ID, okey))
		}
		if se != nil {
			segs[i] = se
			times[i] = se.BuildTime()
			s.counters.Add(CounterShardHits, 1)
			s.counters.Add(CounterSavedShardNS, int64(se.BuildTime()))
		} else {
			s.counters.Add(CounterShardMisses, 1)
			missing = append(missing, d)
			missingIdx = append(missingIdx, i)
		}
	}

	bs := &qkbfly.BuildStats{Parallelism: 1, PerDocElapsed: []time.Duration{}}
	var buildErr error
	if len(missing) > 0 {
		s.counters.Add(CounterEngineRuns, 1)
		built, mbs, err := s.backend.BuildShardsContext(ctx, missing, opts...)
		buildErr = err
		if mbs != nil {
			bs.Sentences = mbs.Sentences
			bs.Clauses = mbs.Clauses
			bs.EdgesRemoved = mbs.EdgesRemoved
			bs.Parallelism = mbs.Parallelism
			bs.StageElapsed.Add(mbs.StageElapsed)
			s.counters.Add(CounterEngineDocs, int64(mbs.Documents))
		}
		for j, shard := range built {
			if shard == nil {
				continue // not reached before cancellation
			}
			i := missingIdx[j]
			if mbs != nil && j < len(mbs.PerDocElapsed) {
				times[i] = mbs.PerDocElapsed[j]
			}
			// Anonymous documents seal with an empty identity: their
			// segment is usable (and mergeable) but never cached, and
			// never poisons a run-cache key.
			id := ""
			if docs[i].ID != "" {
				id = shardKey(docs[i].ID, okey)
			}
			seg := store.SealSegment(shard, id)
			seg.SetBuildTime(times[i])
			segs[i] = seg
			if id != "" {
				s.storeShard(id, seg)
			}
		}
	}
	for _, seg := range segs {
		if seg != nil {
			bs.Documents++
		}
	}
	return segs, times, bs, buildErr
}

// recordQueryHit credits the saved engine work of one query-cache hit.
func (s *Server) recordQueryHit(e *queryEntry) {
	s.counters.Add(CounterQueryHits, 1)
	st := e.bs.StageElapsed
	s.counters.Add(CounterSavedTotalNS, int64(e.bs.Elapsed))
	s.counters.Add(CounterSavedAnnotateNS, int64(st.Annotate))
	s.counters.Add(CounterSavedGraphNS, int64(st.Graph))
	s.counters.Add(CounterSavedDensifyNS, int64(st.Densify))
	s.counters.Add(CounterSavedCanonicalizeNS, int64(st.Canonicalize))
}

// lookupQuery returns the live query entry for key, lazily expiring it
// when the TTL has passed.
func (s *Server) lookupQuery(key string) *queryEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, added, ok := s.queries.get(key)
	if !ok {
		return nil
	}
	if s.expired(added) {
		s.queries.remove(key)
		s.counters.Add(CounterQueryTTLEvictions, 1)
		return nil
	}
	return v.(*queryEntry)
}

func (s *Server) storeQuery(key string, e *queryEntry) {
	s.mu.Lock()
	if _, evicted := s.queries.put(key, e, s.opt.Clock()); evicted {
		s.counters.Add(CounterQueryEvictions, 1)
	}
	s.mu.Unlock()
}

func (s *Server) lookupShard(key string) *store.Segment {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, added, ok := s.shards.get(key)
	if !ok {
		return nil
	}
	if s.expired(added) {
		s.shards.remove(key)
		s.counters.Add(CounterShardTTLEvictions, 1)
		return nil
	}
	return v.(*store.Segment)
}

func (s *Server) storeShard(key string, seg *store.Segment) {
	s.mu.Lock()
	if _, evicted := s.shards.put(key, seg, s.opt.Clock()); evicted {
		s.counters.Add(CounterShardEvictions, 1)
	}
	s.mu.Unlock()
}

// lookupRun / storeRun mirror the shard accessors for cached partial
// merges (no dedicated TTL-eviction counter: runs rebuild cheaply from
// live segments and expire under the same TTL).
func (s *Server) lookupRun(key string) *store.Segment {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, added, ok := s.runs.get(key)
	if !ok {
		return nil
	}
	if s.expired(added) {
		s.runs.remove(key)
		return nil
	}
	return v.(*store.Segment)
}

func (s *Server) storeRun(key string, seg *store.Segment) {
	s.mu.Lock()
	s.runs.put(key, seg, s.opt.Clock())
	s.mu.Unlock()
}

// expired reports whether an entry stamped at added has outlived the TTL.
func (s *Server) expired(added time.Time) bool {
	return s.opt.TTL > 0 && s.opt.Clock().Sub(added) >= s.opt.TTL
}

// queryKey normalizes the request into the cache key. Whitespace and case
// differences in the query collapse (mirroring index normalization);
// options that change the built KB (the co-reference window) are part of
// the key, while pure execution knobs (parallelism) are not — the engine
// guarantees the same KB at any worker count.
func queryKey(query, source string, size int, opts []qkbfly.Option) string {
	q := strings.Join(strings.Fields(strings.ToLower(query)), " ")
	return q + "\x00" + source + "\x00" + strconv.Itoa(size) + "\x00" + resolveOptions(opts).key()
}

// resolvedOptions are the concrete per-call option values after folding
// the opaque option closures into a canonical engine configuration. Cache
// keys derive from these resolved values — never from formatting the
// option slice itself — so equivalent option sets (reordered, duplicated,
// or differing only in execution knobs) collapse onto one cache entry.
type resolvedOptions struct {
	corefWindow int // -1 = builder default; changes the built KB
	parallelism int // worker-pool size; never changes the built KB
}

// resolveOptions applies the options to the engine's canonical defaults
// (the same way qkbfly.System does when it runs a build) and captures the
// resulting values.
func resolveOptions(opts []qkbfly.Option) resolvedOptions {
	cfg := engine.Config{CorefWindow: -1}
	for _, o := range opts {
		o(&cfg)
	}
	return resolvedOptions{corefWindow: cfg.CorefWindow, parallelism: cfg.Parallelism}
}

// key renders only the result-affecting resolved values. Parallelism is
// deliberately excluded: the engine produces a byte-identical KB at any
// worker count, so keying on it would split equivalent cache entries.
func (r resolvedOptions) key() string {
	return "cw=" + strconv.Itoa(r.corefWindow)
}

// shardKey identifies a cached per-document shard: the document plus the
// options its build depended on.
func shardKey(docID, optKey string) string {
	return docID + "\x00" + optKey
}

// copyStats returns a shallow copy with its own PerDocElapsed, so callers
// of a cache hit cannot disturb the cached accounting.
func copyStats(bs *qkbfly.BuildStats) *qkbfly.BuildStats {
	cp := *bs
	cp.PerDocElapsed = append([]time.Duration(nil), bs.PerDocElapsed...)
	return &cp
}
