// Package canon implements stage 3 of QKBfly (§5): on-the-fly KB
// canonicalization. It merges co-reference node groups into canonical or
// emerging entities, maps relational paraphrases onto the pattern
// repository's synsets, assembles binary and higher-arity facts from the
// clause structure, and populates the KB store.
package canon

import (
	"sort"
	"strings"

	"qkbfly/internal/densify"
	"qkbfly/internal/graph"
	"qkbfly/internal/kb/entityrepo"
	"qkbfly/internal/kb/patterns"
	"qkbfly/internal/kb/store"
	"qkbfly/internal/nlp"
	"qkbfly/internal/nlp/clause"
)

// Canonicalizer holds the repositories used during canonicalization.
type Canonicalizer struct {
	Patterns *patterns.Repo
	Repo     *entityrepo.Repo
	// NewEntityThreshold: assignments below this confidence are treated as
	// out-of-KB names and become emerging entities (§5).
	NewEntityThreshold float64
}

// New returns a Canonicalizer with the default threshold.
func New(p *patterns.Repo, r *entityrepo.Repo) *Canonicalizer {
	return &Canonicalizer{Patterns: p, Repo: r, NewEntityThreshold: 0.10}
}

// nodeValue is the resolved value of a noun-phrase/pronoun node.
type nodeValue struct {
	value      store.Value
	confidence float64
	types      []string
	resolved   bool
}

// Populate canonicalizes one document's densified graph into the KB.
func (c *Canonicalizer) Populate(kb *store.KB, doc *nlp.Document, g *graph.Graph, res *densify.Result) {
	values := c.resolveNodes(kb, doc, g, res)

	// Facts from clause nodes: subject plus all arguments that depend on
	// the same clause node merge into one (possibly higher-arity) fact.
	for _, n := range g.Nodes {
		if n.Kind != graph.ClauseNode || n.Clause == nil {
			continue
		}
		c.clauseFact(kb, doc, g, n, values)
	}
	// Standalone binary facts from heuristic relation edges (possessives
	// and "is the <noun> of" complements).
	for _, e := range g.Edges {
		if e.Kind != graph.RelationEdge || !e.Aux || e.Removed {
			continue
		}
		sv, ok1 := values[e.From]
		ov, ok2 := values[e.To]
		if !ok1 || !ok2 || !sv.resolved || !ov.resolved {
			continue
		}
		rel, _ := c.Patterns.Canonicalize(e.Label, sv.types, ov.types)
		kb.AddFact(store.Fact{
			Subject: sv.value, Relation: rel, Pattern: e.Label,
			Objects:    []store.Value{ov.value},
			Confidence: minConf(sv.confidence, ov.confidence),
			Source:     store.Provenance{DocID: doc.ID, SentIndex: g.Nodes[e.From].SentIndex},
		})
	}
}

// resolveNodes turns every NP/pronoun node into a store.Value, creating
// entity records (linked and emerging) along the way.
func (c *Canonicalizer) resolveNodes(kb *store.KB, doc *nlp.Document, g *graph.Graph, res *densify.Result) map[int]nodeValue {
	values := map[int]nodeValue{}

	// Union-find over alive NP-NP sameAs edges.
	parent := map[int]int{}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, n := range g.Nodes {
		if n.Kind == graph.NounPhraseNode {
			parent[n.ID] = n.ID
		}
	}
	for _, e := range g.Edges {
		if e.Kind != graph.SameAsEdge || e.Removed {
			continue
		}
		if g.Nodes[e.From].Kind != graph.NounPhraseNode || g.Nodes[e.To].Kind != graph.NounPhraseNode {
			continue
		}
		ra, rb := find(e.From), find(e.To)
		if ra != rb {
			parent[ra] = rb
		}
	}
	groups := map[int][]int{}
	for _, n := range g.Nodes {
		if n.Kind == graph.NounPhraseNode {
			groups[find(n.ID)] = append(groups[find(n.ID)], n.ID)
		}
	}

	// Resolve groups in sorted-root order: map iteration order would make
	// entity-record insertion order (and thus Entities()) vary run to run,
	// which the deterministic parallel merge cannot tolerate.
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	for _, r := range roots {
		c.resolveGroup(kb, g, groups[r], res, values)
	}
	// Pronouns take their antecedent's value.
	for _, n := range g.Nodes {
		if n.Kind != graph.PronounNode {
			continue
		}
		if ant, ok := res.Antecedent[n.ID]; ok && ant >= 0 {
			if v, ok2 := values[ant]; ok2 {
				values[n.ID] = v
			}
		}
	}
	return values
}

// resolveGroup decides whether a sameAs group is a repository entity or an
// emerging entity and registers it.
func (c *Canonicalizer) resolveGroup(kb *store.KB, g *graph.Graph, grp []int, res *densify.Result, values map[int]nodeValue) {
	// Collect mention surfaces and the (single) assignment.
	var mentions []string
	entityID := ""
	conf := 1.0
	for _, id := range grp {
		n := g.Nodes[id]
		if n.Text != "" {
			mentions = append(mentions, n.Text)
		}
		if e, ok := res.Assignment[id]; ok && e != "" {
			entityID = e
			if cf, ok2 := res.Confidence[id]; ok2 && cf < conf {
				conf = cf
			}
		}
	}

	// TIME nodes are literals, never entities.
	if len(grp) == 1 {
		n := g.Nodes[grp[0]]
		if n.NER == nlp.NERTime {
			values[n.ID] = nodeValue{
				value:      store.Value{Literal: n.TimeValue, IsTime: true},
				confidence: 1, types: []string{"TIME"}, resolved: true,
			}
			return
		}
	}

	if entityID != "" && conf >= c.NewEntityThreshold {
		// Linked to the repository.
		e := c.Repo.Get(entityID)
		types := entityrepo.TypeClosure(e.Types)
		kb.AddEntity(store.EntityRecord{
			ID: entityID, Name: e.Name, Mentions: mentions, Types: e.Types,
		})
		for _, id := range grp {
			values[id] = nodeValue{
				value:      store.Value{EntityID: entityID},
				confidence: conf, types: types, resolved: true,
			}
		}
		return
	}

	// Out-of-KB: named mentions become an emerging entity; unnamed common
	// nouns ("actor", "$100,000") stay literals.
	named := false
	var nerType nlp.NERType = nlp.NERNone
	for _, id := range grp {
		n := g.Nodes[id]
		if n.NER != nlp.NERNone && n.NER != nlp.NERTime {
			named = true
			nerType = n.NER
		}
	}
	if !named {
		for _, id := range grp {
			n := g.Nodes[id]
			values[id] = nodeValue{
				value:      store.Value{Literal: n.Text},
				confidence: 1, types: []string{"LITERAL"}, resolved: n.Text != "",
			}
		}
		return
	}
	name := longest(mentions)
	newID := "new:" + strings.ReplaceAll(name, " ", "_")
	types := nerTypes(nerType)
	kb.AddEntity(store.EntityRecord{
		ID: newID, Name: name, Mentions: mentions, Types: types, Emerging: true,
	})
	for _, id := range grp {
		values[id] = nodeValue{
			value:      store.Value{EntityID: newID},
			confidence: 1, types: types, resolved: true,
		}
	}
}

// clauseFact assembles the (possibly higher-arity) fact of one clause.
func (c *Canonicalizer) clauseFact(kb *store.KB, doc *nlp.Document, g *graph.Graph, cn *graph.Node, values map[int]nodeValue) {
	cl := cn.Clause
	if cl.Subject == nil || cl.Negated {
		return
	}
	si := cn.SentIndex
	subjNode := g.NPAt(si, cl.Subject.Head)
	if subjNode == nil {
		return
	}
	sv, ok := values[subjNode.ID]
	if !ok || !sv.resolved || !sv.value.IsEntity() {
		return // unresolved pronoun subjects and literal subjects are dropped
	}
	sent := &doc.Sentences[si]
	var objs []store.Value
	var objTypes []string
	conf := sv.confidence
	for _, arg := range cl.Args() {
		if arg.Role == clause.RoleSubject {
			continue
		}
		// A complement that carries a prepositional object ("is the son
		// OF X", "is a member OF Y") was already emitted as a standalone
		// relation via the heuristic edge; the bare complement noun would
		// be a junk fact ("<X, be, son>").
		if arg.Role == clause.RoleComplement && len(sent.ChildrenByRel(arg.Head, nlp.DepPrep)) > 0 {
			continue
		}
		an := g.NPAt(si, arg.Head)
		if an == nil {
			continue
		}
		av, ok := values[an.ID]
		if !ok || !av.resolved {
			continue
		}
		objs = append(objs, av.value)
		if av.value.IsEntity() && objTypes == nil {
			objTypes = av.types
		}
		if av.value.IsEntity() {
			conf = minConf(conf, av.confidence)
		}
	}
	if len(objs) == 0 {
		return
	}
	rel, _ := c.Patterns.Canonicalize(cl.Pattern, sv.types, objTypes)
	kb.AddFact(store.Fact{
		Subject: sv.value, Relation: rel, Pattern: cl.Pattern,
		Objects: objs, Confidence: conf,
		Source: store.Provenance{DocID: doc.ID, SentIndex: si},
	})
}

func minConf(a, b float64) float64 {
	if b < a {
		return b
	}
	return a
}

func longest(xs []string) string {
	best := ""
	for _, x := range xs {
		if len(x) > len(best) {
			best = x
		}
	}
	return best
}

// nerTypes maps a coarse NER type onto the fine-grained type system.
func nerTypes(t nlp.NERType) []string {
	switch t {
	case nlp.NERPerson:
		return []string{entityrepo.TypePerson}
	case nlp.NEROrganization:
		return []string{entityrepo.TypeOrganization}
	case nlp.NERLocation:
		return []string{entityrepo.TypeLocation}
	default:
		return []string{"MISC"}
	}
}
