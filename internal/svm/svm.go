// Package svm implements a linear classifier over sparse string features,
// standing in for the Liblinear SVM library [Fan et al. 2008] the paper
// uses to rank QA answer candidates (Appendix B) and for the logistic
// factor weights of the DeepDive-style extractor. Training is Pegasos-style
// stochastic sub-gradient descent on the hinge loss with L2
// regularization; a logistic option trains log-loss instead, so scores can
// be read as probabilities.
package svm

import (
	"math"
	"math/rand"
)

// Example is one training instance: sparse binary/real features.
type Example struct {
	Features map[string]float64
	Label    bool
}

// Options configure training.
type Options struct {
	Epochs   int
	Lambda   float64 // L2 regularization strength
	Eta0     float64 // initial learning rate
	Logistic bool    // log-loss instead of hinge
	// PositiveWeight scales the gradient of positive examples (class
	// weighting for imbalanced problems, like Liblinear's -w1).
	PositiveWeight float64
	Seed           int64
}

// DefaultOptions returns the defaults (mirroring Liblinear's).
func DefaultOptions() Options {
	return Options{Epochs: 20, Lambda: 1e-4, Eta0: 0.5, PositiveWeight: 1, Seed: 1}
}

// Model is a trained linear model.
type Model struct {
	W        map[string]float64
	Bias     float64
	Logistic bool
}

// Train fits a linear model on the examples with decayed SGD.
func Train(examples []Example, opt Options) *Model {
	if opt.Epochs == 0 {
		opt = DefaultOptions()
	}
	if opt.Eta0 == 0 {
		opt.Eta0 = 0.5
	}
	if opt.PositiveWeight == 0 {
		opt.PositiveWeight = 1
	}
	m := &Model{W: map[string]float64{}, Logistic: opt.Logistic}
	rng := rand.New(rand.NewSource(opt.Seed))
	t := 0
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		order := rng.Perm(len(examples))
		for _, i := range order {
			t++
			eta := opt.Eta0 / (1 + opt.Lambda*float64(t)*100)
			ex := &examples[i]
			y := -1.0
			weight := 1.0
			if ex.Label {
				y = 1.0
				weight = opt.PositiveWeight
			}
			margin := y * (m.dot(ex.Features) + m.Bias)
			// L2 shrinkage.
			shrink := 1 - eta*opt.Lambda
			if shrink < 0 {
				shrink = 0
			}
			for k := range m.W {
				m.W[k] *= shrink
			}
			if opt.Logistic {
				// gradient of log-loss: -y * sigmoid(-margin)
				g := weight * y * sigmoid(-margin)
				for k, v := range ex.Features {
					m.W[k] += eta * g * v
				}
				m.Bias += eta * g
			} else if margin < 1 {
				for k, v := range ex.Features {
					m.W[k] += eta * weight * y * v
				}
				m.Bias += eta * weight * y
			}
		}
	}
	return m
}

func (m *Model) dot(f map[string]float64) float64 {
	s := 0.0
	for k, v := range f {
		s += m.W[k] * v
	}
	return s
}

// Score returns the raw decision value.
func (m *Model) Score(f map[string]float64) float64 { return m.dot(f) + m.Bias }

// Prob returns the positive-class probability (logistic link).
func (m *Model) Prob(f map[string]float64) float64 { return sigmoid(m.Score(f)) }

// Predict returns the binary decision.
func (m *Model) Predict(f map[string]float64) bool { return m.Score(f) > 0 }

func sigmoid(x float64) float64 {
	if x < -40 {
		return 0
	}
	if x > 40 {
		return 1
	}
	return 1 / (1 + math.Exp(-x))
}
