package serve

import (
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"qkbfly/internal/query"
	"qkbfly/internal/replica"
)

// Follower read path: when a daemon runs with -follow, HandlerOptions
// .Replica replaces the Session as the source of truth for /facts,
// /query and /session. Reads always come from the follower's last
// fingerprint-verified KB — never a partially applied version — and
// clients that need read-your-writes after posting to the leader pin
// ?min_version=N: a replica still behind N answers 412 Precondition
// Failed instead of silently serving stale data, and the client retries
// or falls back to the leader.

// minVersionParam parses ?min_version= (0 when absent).
func minVersionParam(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	v := r.URL.Query().Get("min_version")
	if v == "" {
		return 0, true
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		http.Error(w, "invalid min_version: "+err.Error(), http.StatusBadRequest)
		return 0, false
	}
	return n, true
}

// checkMinVersion enforces a client's pinned floor against the version
// actually being served; false means the 412 was already written.
func checkMinVersion(w http.ResponseWriter, serving, min uint64) bool {
	if serving >= min {
		return true
	}
	w.Header().Set("X-QKBfly-Version", strconv.FormatUint(serving, 10))
	http.Error(w, fmt.Sprintf("serving version %d is behind pinned min_version %d", serving, min),
		http.StatusPreconditionFailed)
	return false
}

// handleFactsReplica is /facts on a follower. A follower keeps no
// version history (it serves exactly one verified version), so every
// since= behind the current version behaves like the leader's
// horizon-miss contract: a reset line, then a full dump at the served
// version. follow= is not supported — follow the leader's stream.
func handleFactsReplica(opt HandlerOptions, w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if q.Get("follow") != "" {
		http.Error(w, "followers do not stream /facts; follow=1 against the leader", http.StatusBadRequest)
		return
	}
	var since uint64
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "invalid since: "+err.Error(), http.StatusBadRequest)
			return
		}
		since = n
	}
	var tau float64
	if v := q.Get("tau"); v != "" {
		n, err := strconv.ParseFloat(v, 64)
		if err != nil {
			http.Error(w, "invalid tau: "+err.Error(), http.StatusBadRequest)
			return
		}
		tau = n
	}
	min, ok := minVersionParam(w, r)
	if !ok {
		return
	}
	kb, cur := opt.Replica.KB()
	if !checkMinVersion(w, cur, min) {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-QKBfly-Version", strconv.FormatUint(cur, 10))
	w.WriteHeader(http.StatusOK)
	sw := newStreamWriter(w, opt.StreamWriteTimeout)
	if since >= cur {
		return // caller is current; nothing newer here
	}
	if sw.encode(map[string]any{"reset": true, "version": cur}) != nil {
		return
	}
	facts := kb.Facts()
	for i := range facts {
		if facts[i].Confidence < tau {
			continue
		}
		if sw.encode(lineFor(cur, &facts[i])) != nil {
			return
		}
	}
}

// handleQueryReplica is /query on a follower: the pattern is evaluated
// directly over the verified KB. Standing queries (since=/follow=) need
// the leader's version history and are rejected here.
func handleQueryReplica(opt HandlerOptions, w http.ResponseWriter, r *http.Request) {
	req, ok := parseQueryRequest(w, r)
	if !ok {
		return
	}
	if req.Since != nil || req.Follow {
		http.Error(w, "followers do not serve standing queries; use since=/follow= against the leader", http.StatusBadRequest)
		return
	}
	if req.MinVersion > 0 {
		if _, cur := opt.Replica.KB(); !checkMinVersion(w, cur, req.MinVersion) {
			return
		}
	}
	p, err := query.Parse(req.Pattern)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	p.Tau, p.Limit = req.Tau, req.Limit
	if err := p.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	kb, cur := opt.Replica.KB()
	rows := query.ScanKB(kb, p)
	if req.Stream {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-QKBfly-Version", strconv.FormatUint(cur, 10))
		w.WriteHeader(http.StatusOK)
		sw := newStreamWriter(w, opt.StreamWriteTimeout)
		for _, row := range rows {
			if sw.encode(rowFor(cur, row)) != nil {
				return
			}
		}
		return
	}
	resp := queryResponse{
		Version: cur,
		Pattern: p.String(),
		Tau:     p.Tau,
		Limit:   p.Limit,
		Count:   len(rows),
		Rows:    []rowRef{},
	}
	for _, row := range rows {
		resp.Rows = append(resp.Rows, rowFor(0, row))
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSessionReplica is /session on a follower: the replica's served
// state instead of an ingestion session.
func handleSessionReplica(opt HandlerOptions, w http.ResponseWriter, r *http.Request) {
	st := opt.Replica.Status()
	kb, cur := opt.Replica.KB()
	writeJSON(w, http.StatusOK, map[string]any{
		"role":         st.Role,
		"leader":       st.Leader,
		"version":      cur,
		"facts":        kb.Len(),
		"entities":     len(kb.Entities()),
		"lag_versions": st.LagVersions,
		"degraded":     st.Degraded,
	})
}

// healthResponse is the /healthz shape: role and staleness at a glance,
// so load balancers can route around degraded or lagging replicas.
type healthResponse struct {
	Status             string `json:"status"`
	Role               string `json:"role"`
	Version            uint64 `json:"version"`
	Leader             string `json:"leader,omitempty"`
	LeaderHead         uint64 `json:"leader_head,omitempty"`
	LagVersions        uint64 `json:"lag_versions,omitempty"`
	LagMS              int64  `json:"lag_ms,omitempty"`
	LastVerifiedUnixMS int64  `json:"last_verified_unix_ms,omitempty"`
	Quarantined        int    `json:"quarantined,omitempty"`
	Degraded           bool   `json:"degraded,omitempty"`
}

// roleFor classifies the process: follower when replicating, leader
// once any replication stream has been served, standalone otherwise.
func roleFor(s *Server, opt HandlerOptions) string {
	if opt.Replica != nil {
		return "follower"
	}
	if s != nil && s.counters.Get(CounterDeltaStreams) > 0 {
		return "leader"
	}
	return "standalone"
}

func healthFor(s *Server, opt HandlerOptions) healthResponse {
	h := healthResponse{Status: "ok", Role: roleFor(s, opt)}
	switch {
	case opt.Replica != nil:
		st := opt.Replica.Status()
		h.Version = st.Version
		h.Leader = st.Leader
		h.LeaderHead = st.LeaderHead
		h.LagVersions = st.LagVersions
		h.LagMS = st.LagMS
		h.LastVerifiedUnixMS = st.LastVerifiedUnixMS
		h.Quarantined = len(st.Quarantined)
		h.Degraded = st.Degraded
		if st.Degraded {
			h.Status = "degraded"
		}
	case opt.Session != nil:
		h.Version = opt.Session.Snapshot().Version()
	}
	return h
}

// statsResponse wraps the server's cache/counter snapshot with the
// replication role, process uptime and build identity and, on a
// follower, the full replica status.
type statsResponse struct {
	Snapshot
	Role          string          `json:"role"`
	UptimeSeconds float64         `json:"uptime_seconds"`
	Build         buildRef        `json:"build"`
	Replica       *replica.Status `json:"replica,omitempty"`
}

// buildRef identifies the running binary: toolchain, platform, and the
// VCS revision when the binary was built from a checkout.
type buildRef struct {
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	Revision  string `json:"revision,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

// buildInfo is computed once: the binary does not change while running.
var buildInfo = sync.OnceValue(func() buildRef {
	b := buildRef{GoVersion: runtime.Version(), OS: runtime.GOOS, Arch: runtime.GOARCH}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				b.Revision = s.Value
			case "vcs.modified":
				b.Modified = s.Value == "true"
			}
		}
	}
	return b
})

func statsFor(s *Server, opt HandlerOptions) statsResponse {
	resp := statsResponse{
		Role:          roleFor(s, opt),
		UptimeSeconds: time.Since(opt.StartTime).Seconds(),
		Build:         buildInfo(),
	}
	if s != nil {
		resp.Snapshot = s.Stats()
	}
	if opt.Replica != nil {
		st := opt.Replica.Status()
		resp.Replica = &st
	}
	return resp
}
