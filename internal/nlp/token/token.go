// Package token implements sentence splitting and word tokenization.
//
// It plays the role of the tokenizer in the Stanford CoreNLP pipeline the
// paper uses for pre-processing (§2.2). The tokenizer is rule-based: it
// splits punctuation from words, keeps abbreviations and decimal numbers
// intact, and separates English clitics ("'s", "n't", "'re", ...).
package token

import (
	"strings"
	"sync"
	"unicode"

	"qkbfly/internal/nlp"
)

// abbreviations that do not end a sentence even though they end with '.'.
var abbreviations = map[string]bool{
	"mr.": true, "mrs.": true, "ms.": true, "dr.": true, "prof.": true,
	"st.": true, "jr.": true, "sr.": true, "vs.": true, "etc.": true,
	"inc.": true, "ltd.": true, "co.": true, "corp.": true, "gen.": true,
	"lt.": true, "col.": true, "sgt.": true, "rev.": true, "hon.": true,
	"u.s.": true, "u.k.": true, "e.g.": true, "i.e.": true, "jan.": true,
	"feb.": true, "mar.": true, "apr.": true, "jun.": true, "jul.": true,
	"aug.": true, "sep.": true, "sept.": true, "oct.": true, "nov.": true,
	"dec.": true, "no.": true, "fig.": true, "approx.": true, "dept.": true,
	"f.c.": true, "a.c.": true, "d.c.": true,
}

// clitics split from the preceding word, longest first.
var clitics = []string{"n't", "'ll", "'re", "'ve", "'s", "'m", "'d"}

// SplitSentences splits text into sentence strings. A sentence boundary is
// a '.', '!' or '?' that is not part of a known abbreviation, an initial
// ("J. Smith") or a decimal number, followed by whitespace and an upper-case
// letter, digit, or quote.
func SplitSentences(text string) []string {
	var sentences []string
	runes := []rune(text)
	start := 0
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		if r != '.' && r != '!' && r != '?' {
			continue
		}
		if r == '.' {
			// Decimal number: "3.5".
			if i > 0 && i+1 < len(runes) && unicode.IsDigit(runes[i-1]) && unicode.IsDigit(runes[i+1]) {
				continue
			}
			// Abbreviation or single-letter initial.
			w := lastWord(runes, i)
			if abbreviations[strings.ToLower(w+".")] {
				continue
			}
			if len([]rune(w)) == 1 && unicode.IsUpper([]rune(w)[0]) {
				continue
			}
		}
		// Consume trailing closing quotes/brackets.
		j := i + 1
		for j < len(runes) && (runes[j] == '"' || runes[j] == '\'' || runes[j] == ')' || runes[j] == ']') {
			j++
		}
		// Must be followed by whitespace then an upper-case/digit/quote, or EOF.
		k := j
		for k < len(runes) && unicode.IsSpace(runes[k]) {
			k++
		}
		if k == j && k < len(runes) {
			continue // no whitespace after the period
		}
		if k < len(runes) {
			next := runes[k]
			if !unicode.IsUpper(next) && !unicode.IsDigit(next) && next != '"' && next != '\'' && next != '(' {
				continue
			}
		}
		s := strings.TrimSpace(string(runes[start:j]))
		if s != "" {
			sentences = append(sentences, s)
		}
		start = k
		i = k - 1
	}
	if tail := strings.TrimSpace(string(runes[start:])); tail != "" {
		sentences = append(sentences, tail)
	}
	return sentences
}

func lastWord(runes []rune, end int) string {
	i := end - 1
	for i >= 0 && !unicode.IsSpace(runes[i]) {
		i--
	}
	return string(runes[i+1 : end])
}

// tokScratch holds the intermediate token buffers of one Tokenize call;
// pooled because the raw and comma-fixed passes are discarded once the
// exact-size result slice is built.
type tokScratch struct{ raw, fixed []nlp.Token }

var tokPool = sync.Pool{New: func() any {
	return &tokScratch{raw: make([]nlp.Token, 0, 64), fixed: make([]nlp.Token, 0, 64)}
}}

// Tokenize splits a single sentence into tokens with byte offsets.
// POS, lemma, NER and dependency fields are left for later stages.
//
// The intermediate buffers are pooled; the returned slice is a single
// exact-size allocation owned by the caller (it outlives the call as part
// of the annotated document).
func Tokenize(sentence string) []nlp.Token {
	sc := tokPool.Get().(*tokScratch)
	raw := tokenizeInto(sc.raw[:0], sentence)
	fixed := fixCommaTokens(sc.fixed[:0], raw)
	var out []nlp.Token
	if len(fixed) > 0 {
		out = make([]nlp.Token, len(fixed))
		copy(out, fixed)
	}
	sc.raw, sc.fixed = raw, fixed
	tokPool.Put(sc)
	return out
}

// tokenizeInto appends the raw tokens of the sentence to dst.
func tokenizeInto(dst []nlp.Token, sentence string) []nlp.Token {
	tokens := dst
	add := func(text string, start, end int) {
		if text == "" {
			return
		}
		tokens = append(tokens, nlp.Token{
			Text: text, Start: start, End: end,
			Head: -1, DepRel: nlp.DepDep, NER: nlp.NERNone,
		})
	}
	i := 0
	n := len(sentence)
	for i < n {
		r := rune(sentence[i])
		switch {
		case unicode.IsSpace(r):
			i++
		case isWordRune(r):
			j := i
			for j < n && (isWordRune(rune(sentence[j])) ||
				// interior apostrophe ("didn't", "O'Brien")
				(sentence[j] == '\'' && j+1 < n && j > i && isWordRune(rune(sentence[j+1])))) {
				j++
			}
			// Keep decimal points and internal periods of abbreviations,
			// and internal hyphens ("ex-wife", "co-founder").
			for j < n && (sentence[j] == '.' || sentence[j] == '-') && j+1 < n && isWordRune(rune(sentence[j+1])) {
				j++
				for j < n && isWordRune(rune(sentence[j])) {
					j++
				}
			}
			word := sentence[i:j]
			// Attach a trailing period if the word is a known abbreviation.
			if j < n && sentence[j] == '.' && abbreviations[strings.ToLower(word+".")] {
				j++
				word = sentence[i:j]
			}
			emitWithClitics(word, i, add)
			i = j
		default:
			// Standalone clitic written with a space ("Pitt 's wife").
			if sentence[i] == '\'' {
				matched := false
				for _, c := range clitics {
					rest := c[1:]
					if i+1+len(rest) <= n && strings.EqualFold(sentence[i+1:i+1+len(rest)], rest) &&
						(i+1+len(rest) == n || !isWordRune(rune(sentence[i+1+len(rest)]))) {
						add(sentence[i:i+1+len(rest)], i, i+1+len(rest))
						i += 1 + len(rest)
						matched = true
						break
					}
				}
				if matched {
					continue
				}
			}
			// Punctuation and symbols: one token per run of identical
			// characters for "..." style, otherwise one per character.
			j := i + 1
			for j < n && sentence[j] == sentence[i] && (sentence[i] == '.' || sentence[i] == '-') {
				j++
			}
			add(sentence[i:j], i, j)
			i = j
		}
	}
	return tokens
}

// emitWithClitics splits clitics like "'s" and "n't" off a word.
func emitWithClitics(word string, offset int, add func(string, int, int)) {
	lower := strings.ToLower(word)
	for _, c := range clitics {
		if strings.HasSuffix(lower, c) && len(word) > len(c) {
			base := word[:len(word)-len(c)]
			add(base, offset, offset+len(base))
			add(word[len(word)-len(c):], offset+len(base), offset+len(word))
			return
		}
	}
	add(word, offset, offset+len(word))
}

func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '$' || r == '%' || r == ','
}

// TokenizeSentences splits text into sentences and tokenizes each one,
// producing nlp.Sentence values with Index set.
func TokenizeSentences(text string) []nlp.Sentence {
	raw := SplitSentences(text)
	out := make([]nlp.Sentence, 0, len(raw))
	for i, s := range raw {
		out = append(out, nlp.Sentence{Index: i, Text: s, Tokens: Tokenize(s)})
	}
	return out
}

// fixCommaTokens repairs tokens where a ',' was glued to a word but is not
// a thousands separator (e.g. "Paris," -> "Paris" + ","), appending the
// repaired stream to dst.
func fixCommaTokens(dst []nlp.Token, toks []nlp.Token) []nlp.Token {
	out := dst
	for _, t := range toks {
		text := t.Text
		start := t.Start
		for {
			idx := strings.IndexByte(text, ',')
			if idx < 0 {
				break
			}
			// Thousands separator: digit , digit digit digit.
			if idx > 0 && idx+3 < len(text) &&
				isDigit(text[idx-1]) && isDigit(text[idx+1]) && isDigit(text[idx+2]) && isDigit(text[idx+3]) &&
				(idx+4 >= len(text) || !isDigit(text[idx+4])) {
				break
			}
			if idx > 0 {
				out = append(out, nlp.Token{Text: text[:idx], Start: start, End: start + idx, Head: -1, DepRel: nlp.DepDep, NER: nlp.NERNone})
			}
			out = append(out, nlp.Token{Text: ",", Start: start + idx, End: start + idx + 1, Head: -1, DepRel: nlp.DepDep, NER: nlp.NERNone})
			text = text[idx+1:]
			start += idx + 1
		}
		if text != "" {
			out = append(out, nlp.Token{Text: text, Start: start, End: start + len(text), Head: -1, DepRel: nlp.DepDep, NER: nlp.NERNone})
		}
	}
	return out
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }
