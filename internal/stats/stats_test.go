package stats

import (
	"math"
	"testing"

	"qkbfly/internal/corpus"
	"qkbfly/internal/nlp/clause"
	"qkbfly/internal/nlp/depparse"
)

func buildStats(t *testing.T) (*Stats, *corpus.World) {
	t.Helper()
	w := corpus.NewWorld(corpus.SmallConfig())
	pipe := clause.NewPipeline(w.Repo, depparse.Malt)
	st := Build(corpus.Docs(w.BackgroundCorpus()), w.Repo, pipe)
	return st, w
}

func TestPriorsAreProbabilities(t *testing.T) {
	st, w := buildStats(t)
	// For each entity name, the prior of the entity given its own name
	// must be positive; priors over candidates sum to <= 1.
	checked := 0
	for _, id := range w.Order {
		e := w.Entity(id)
		if e.Emerging {
			continue
		}
		cands := st.Candidates(e.Name)
		if len(cands) == 0 {
			continue
		}
		sum := 0.0
		for cid := range cands {
			p := st.Prior(e.Name, cid)
			if p < 0 || p > 1 {
				t.Fatalf("prior(%q, %s) = %f out of range", e.Name, cid, p)
			}
			sum += p
		}
		if sum > 1.0001 {
			t.Fatalf("priors for %q sum to %f", e.Name, sum)
		}
		checked++
	}
	if checked < 10 {
		t.Errorf("only %d entities had anchor priors", checked)
	}
}

func TestSelfNamePriorDominates(t *testing.T) {
	st, w := buildStats(t)
	// The full unique name of a prominent entity should resolve to it.
	id := w.EntitiesOfType("ACTOR")[0]
	e := w.Entity(id)
	p := st.Prior(e.Name, id)
	if p < 0.5 {
		t.Errorf("prior(%q, %s) = %f, want > 0.5", e.Name, id, p)
	}
}

func TestCoherenceBounds(t *testing.T) {
	st, w := buildStats(t)
	ids := w.EntitiesOfType("PERSON")
	if len(ids) < 2 {
		t.Skip("not enough entities")
	}
	a, b := ids[0], ids[1]
	// Self-coherence is 1 for entities with context vectors.
	if st.ContextVector(a) != nil {
		if c := st.Coherence(a, a); math.Abs(c-1) > 1e-9 {
			t.Errorf("self-coherence = %f", c)
		}
	}
	c := st.Coherence(a, b)
	if c < 0 || c > 1 {
		t.Errorf("coherence out of range: %f", c)
	}
	if st.Coherence(a, b) != st.Coherence(b, a) {
		t.Error("coherence not symmetric")
	}
	if st.Coherence(a, "no_such_entity") != 0 {
		t.Error("coherence with unknown entity should be 0")
	}
}

func TestSentenceSimilarity(t *testing.T) {
	st, w := buildStats(t)
	id := w.EntitiesOfType("ACTOR")[0]
	gd := w.Article(id, false)
	if len(gd.Doc.Sentences) == 0 {
		t.Skip("empty article")
	}
	vec, sum := st.SentenceVector(&gd.Doc.Sentences[0])
	if sum <= 0 || len(vec) == 0 {
		t.Fatal("empty sentence vector")
	}
	sim := st.Similarity(vec, sum, id)
	if sim <= 0 || sim > 1 {
		t.Errorf("similarity = %f, want (0, 1]", sim)
	}
	// Similarity with an unrelated award entity should be lower.
	other := w.EntitiesOfType("AWARD")[0]
	if st.Similarity(vec, sum, other) >= sim {
		t.Errorf("unrelated similarity %f >= own %f",
			st.Similarity(vec, sum, other), sim)
	}
}

func TestTypeSignatures(t *testing.T) {
	st, w := buildStats(t)
	_ = w
	// "marry" between two persons must have been observed.
	ts := st.TypeSignature([]string{"PERSON"}, []string{"PERSON"}, "marry")
	if ts <= 0 {
		t.Error("marry PERSON-PERSON signature is zero")
	}
	// It should be stronger than marry between locations.
	wrong := st.TypeSignature([]string{"LOCATION"}, []string{"LOCATION"}, "marry")
	if wrong >= ts {
		t.Errorf("marry LOC-LOC %f >= PERSON-PERSON %f", wrong, ts)
	}
	if !st.HasPattern("marry") {
		t.Error("HasPattern(marry) = false")
	}
	if st.HasPattern("xyzzy frobnicate") {
		t.Error("HasPattern of nonsense pattern")
	}
}

func TestTypeSignatureDiscriminatesCityVsClub(t *testing.T) {
	st, _ := buildStats(t)
	// "sign for" should prefer FOOTBALL_CLUB objects over CITY objects
	// (the Liverpool disambiguation case of §7.1).
	club := st.TypeSignature([]string{"FOOTBALLER", "ATHLETE", "PERSON"}, []string{"FOOTBALL_CLUB", "ORGANIZATION"}, "sign for")
	city := st.TypeSignature([]string{"FOOTBALLER", "ATHLETE", "PERSON"}, []string{"CITY", "LOCATION"}, "sign for")
	if club == 0 {
		t.Skip("sign for not observed in this small world")
	}
	if city > club {
		t.Errorf("sign for CITY %f > CLUB %f", city, club)
	}
}
