// Package clause implements clause detection in the style of ClausIE
// [Del Corro & Gemulla 2013], which the paper uses as its Open IE backbone
// (§2.2, §3). Following Quirk et al., a clause consists of one subject (S),
// one verb (V), an optional object (O), an optional complement (C) and a
// variable number of adverbials (A); only seven constituent combinations
// occur in English: SV, SVA, SVC, SVO, SVOO, SVOA and SVOC.
//
// The package also provides the Pipeline that chains all annotators:
// tokenization, POS tagging, lemmatization, NP chunking, time tagging,
// NER, dependency parsing and clause detection.
package clause

import (
	"sync"

	"qkbfly/internal/intern"
	"qkbfly/internal/nlp"
	"qkbfly/internal/nlp/chunk"
	"qkbfly/internal/nlp/depparse"
	"qkbfly/internal/nlp/lemma"
	"qkbfly/internal/nlp/ner"
	"qkbfly/internal/nlp/pos"
	"qkbfly/internal/nlp/sutime"
	"qkbfly/internal/nlp/token"
)

// Type is one of the seven clause types of Quirk et al.
type Type string

// The seven clause types.
const (
	SV   Type = "SV"
	SVA  Type = "SVA"
	SVC  Type = "SVC"
	SVO  Type = "SVO"
	SVOO Type = "SVOO"
	SVOA Type = "SVOA"
	SVOC Type = "SVOC"
)

// Role of a constituent within its clause.
type Role string

// Constituent roles.
const (
	RoleSubject        Role = "S"
	RoleVerb           Role = "V"
	RoleObject         Role = "O"
	RoleIndirectObject Role = "IO"
	RoleComplement     Role = "C"
	RoleAdverbial      Role = "A"
)

// Constituent is one argument of a clause: a token span with its head.
type Constituent struct {
	Role  Role
	Head  int    // token index of the constituent head
	Start int    // first token of the span
	End   int    // one past the last token
	Prep  string // preposition introducing an oblique/adverbial, else ""
}

// Clause is one detected clause.
type Clause struct {
	Type       Type
	Verb       int    // token index of the main verb
	Pattern    string // lemmatized relation pattern, e.g. "donate to"
	Subject    *Constituent
	Objects    []Constituent // direct (and indirect) objects in order IO, O
	Complement *Constituent
	Adverbials []Constituent
	Parent     int // index of the governing clause in the result slice, -1
	Negated    bool
}

// Args returns all nominal constituents of the clause in linear order:
// subject, objects, complement, adverbial objects.
func (c *Clause) Args() []Constituent {
	return c.AppendArgs(nil)
}

// AppendArgs appends the clause's nominal constituents to dst in the same
// order as Args — the allocation-free variant for hot paths with a
// reusable buffer.
func (c *Clause) AppendArgs(dst []Constituent) []Constituent {
	if c.Subject != nil {
		dst = append(dst, *c.Subject)
	}
	dst = append(dst, c.Objects...)
	if c.Complement != nil {
		dst = append(dst, *c.Complement)
	}
	return append(dst, c.Adverbials...)
}

// Scratch holds the reusable annotation/detection state of one worker:
// the dependency-parser chart, the per-sentence child index, and the
// clause buffers that AnnotateDocumentScratch recycles across documents.
// Not safe for concurrent use.
type Scratch struct {
	Dep depparse.Scratch

	// child index of the current sentence (counting sort by Head)
	childStart []int32
	childBuf   []int32

	verbs      []int
	verbClause map[int]int
	byteBuf    []byte

	// clause storage pooled per sentence position across documents
	bySent [][]Clause
}

// NewScratch returns an empty annotation scratch.
func NewScratch() *Scratch {
	return &Scratch{verbClause: map[int]int{}}
}

var detectPool = sync.Pool{New: func() any { return NewScratch() }}

// buildChildIndex builds the token->children index of the sentence with a
// counting sort over Head (children emerge in token order, matching
// Sentence.ChildrenByRel's scan order).
func (sc *Scratch) buildChildIndex(sent *nlp.Sentence) {
	n := len(sent.Tokens)
	if cap(sc.childStart) < n+2 {
		sc.childStart = make([]int32, n+2)
	}
	start := sc.childStart[:n+2]
	sc.childStart = start
	for i := range start {
		start[i] = 0
	}
	if cap(sc.childBuf) < n {
		sc.childBuf = make([]int32, n)
	}
	buf := sc.childBuf[:n]
	sc.childBuf = buf
	// start is offset by one so heads in [-1, n) index at head+1; the
	// extra slot makes start[h+2] the end of h's run after prefix sums.
	for j := 0; j < n; j++ {
		h := sent.Tokens[j].Head
		if h >= -1 && h < n {
			start[h+1]++
		}
	}
	for i := 1; i < len(start); i++ {
		start[i] += start[i-1]
	}
	// Fill backwards so each run fills back-to-front yet stays ascending.
	for j := n - 1; j >= 0; j-- {
		h := sent.Tokens[j].Head
		if h >= -1 && h < n {
			start[h+1]--
			buf[start[h+1]] = int32(j)
		}
	}
}

// children returns the token indices whose Head is i, ascending.
func (sc *Scratch) children(i int) []int32 {
	return sc.childBuf[sc.childStart[i+1]:sc.childStart[i+2]]
}

// firstChildByRel returns the first child of i with relation rel, or -1.
func (sc *Scratch) firstChildByRel(sent *nlp.Sentence, i int, rel string) int {
	for _, j := range sc.children(i) {
		if sent.Tokens[j].DepRel == rel {
			return int(j)
		}
	}
	return -1
}

// Detect extracts the clauses of a parsed sentence.
func Detect(sent *nlp.Sentence) []Clause {
	sc := detectPool.Get().(*Scratch)
	out := detectScratch(sent, nil, sc)
	detectPool.Put(sc)
	return out
}

// detectScratch appends the clauses of the sentence to buf using the
// scratch's buffers.
func detectScratch(sent *nlp.Sentence, buf []Clause, sc *Scratch) []Clause {
	toks := sent.Tokens
	sc.buildChildIndex(sent)
	verbs := sc.verbs[:0]
	verbClause := sc.verbClause
	clear(verbClause)
	for i := range toks {
		if !toks[i].POS.IsVerb() {
			continue
		}
		switch toks[i].DepRel {
		case nlp.DepRoot, nlp.DepConj, nlp.DepCcomp, nlp.DepAdvcl, nlp.DepRelcl, nlp.DepXcomp:
			verbs = append(verbs, i)
		}
	}
	sc.verbs = verbs
	clauses := buf
	for _, v := range verbs {
		c := buildClause(sent, v, sc)
		verbClause[v] = len(clauses)
		clauses = append(clauses, c)
	}
	// Wire parent links and inherit missing subjects from the parent
	// clause (conjunction reduction: "Pitt married Jolie and moved to LA").
	for i := range clauses {
		head := toks[clauses[i].Verb].Head
		clauses[i].Parent = -1
		for head >= 0 {
			if pi, ok := verbClause[head]; ok {
				clauses[i].Parent = pi
				break
			}
			head = toks[head].Head
		}
		if clauses[i].Subject == nil && clauses[i].Parent >= 0 {
			rel := toks[clauses[i].Verb].DepRel
			p := &clauses[clauses[i].Parent]
			switch rel {
			case nlp.DepConj, nlp.DepXcomp, nlp.DepAdvcl:
				clauses[i].Subject = p.Subject
			case nlp.DepRelcl:
				// subject of a relative clause is the modified nominal
				if g := toks[clauses[i].Verb].Head; g >= 0 && toks[g].POS.IsNoun() {
					cons := constituentAt(sent, g)
					cons.Role = RoleSubject
					clauses[i].Subject = &cons
				}
			}
		}
	}
	return clauses
}

// buildClause assembles the clause for main verb v, reading dependents
// from the scratch's child index.
func buildClause(sent *nlp.Sentence, v int, sc *Scratch) Clause {
	toks := sent.Tokens
	c := Clause{Verb: v, Parent: -1}

	if subj := sc.firstChildByRel(sent, v, nlp.DepNsubj); subj >= 0 {
		cons := constituentAt(sent, subj)
		cons.Role = RoleSubject
		c.Subject = &cons
	}
	for _, j := range sc.children(v) {
		if toks[j].DepRel == nlp.DepIobj {
			cons := constituentAt(sent, int(j))
			cons.Role = RoleIndirectObject
			c.Objects = append(c.Objects, cons)
		}
	}
	for _, j := range sc.children(v) {
		if toks[j].DepRel == nlp.DepDobj {
			cons := constituentAt(sent, int(j))
			cons.Role = RoleObject
			c.Objects = append(c.Objects, cons)
		}
	}
	compl := sc.firstChildByRel(sent, v, nlp.DepAttr)
	if compl < 0 {
		compl = sc.firstChildByRel(sent, v, nlp.DepAcomp)
	}
	if compl >= 0 {
		cons := constituentAt(sent, compl)
		cons.Role = RoleComplement
		c.Complement = &cons
	}
	// Adverbials: prepositional objects and time modifiers. A preposition
	// without an object of its own is a verb particle ("grew up in X"):
	// it joins the relation pattern directly. Particles and prepositions
	// go straight into the pattern buffer in encounter order, which is
	// exactly the old particles-then-preps concatenation order because the
	// pattern appends particles first, then preps.
	var preps []string
	var particles []string
	for _, j := range sc.children(v) {
		switch toks[j].DepRel {
		case nlp.DepPrep:
			hasPobj := false
			for _, o := range sc.children(int(j)) {
				if toks[o].DepRel != nlp.DepPobj {
					continue
				}
				hasPobj = true
				cons := constituentAt(sent, int(o))
				cons.Role = RoleAdverbial
				cons.Prep = intern.Lower(toks[j].Text)
				c.Adverbials = append(c.Adverbials, cons)
				preps = append(preps, cons.Prep)
			}
			if !hasPobj {
				particles = append(particles, intern.Lower(toks[j].Text))
			}
		case nlp.DepTmod:
			cons := constituentAt(sent, int(j))
			cons.Role = RoleAdverbial
			c.Adverbials = append(c.Adverbials, cons)
		case nlp.DepNeg:
			c.Negated = true
		}
	}
	// Relation pattern: lemmatized verb plus the prepositions of its
	// oblique arguments in order ("donate to", "born in on"). Patterns
	// recur constantly, so the assembled form is interned.
	pattern := toks[v].Lemma
	if pattern == "" {
		pattern = intern.Lower(toks[v].Text)
	}
	if len(particles) > 0 || len(preps) > 0 {
		buf := append(sc.byteBuf[:0], pattern...)
		for _, w := range particles {
			buf = append(append(buf, ' '), w...)
		}
		for _, w := range preps {
			buf = append(append(buf, ' '), w...)
		}
		sc.byteBuf = buf
		pattern = intern.Default.InternBytes(buf)
	}
	c.Pattern = pattern
	c.Type = classify(&c)
	return c
}

// classify determines the clause type from the realized constituents.
func classify(c *Clause) Type {
	hasO := false
	hasIO := false
	for _, o := range c.Objects {
		if o.Role == RoleIndirectObject {
			hasIO = true
		} else {
			hasO = true
		}
	}
	hasA := len(c.Adverbials) > 0
	switch {
	case c.Complement != nil:
		return SVC
	case hasO && hasIO:
		return SVOO
	case hasO && hasA:
		return SVOA
	case hasO:
		return SVO
	case hasA:
		return SVA
	default:
		return SV
	}
}

// constituentAt returns the constituent spanning the chunk that contains
// token j (or the single token if it is outside all chunks).
func constituentAt(sent *nlp.Sentence, j int) Constituent {
	if ci := chunk.ChunkAt(sent, j); ci >= 0 {
		ch := sent.Chunks[ci]
		return Constituent{Head: ch.Head, Start: ch.Start, End: ch.End}
	}
	return Constituent{Head: j, Start: j, End: j + 1}
}

// Pipeline chains all annotators. The zero value is not usable; construct
// with NewPipeline.
type Pipeline struct {
	ner  *ner.Annotator
	mode depparse.Mode
}

// NewPipeline builds a pipeline. gaz may be nil (no gazetteer NER).
func NewPipeline(gaz ner.Gazetteer, mode depparse.Mode) *Pipeline {
	return &Pipeline{ner: ner.New(gaz), mode: mode}
}

// AnnotateSentence runs the full annotator chain on one raw sentence.
func (p *Pipeline) AnnotateSentence(text string, index int) (nlp.Sentence, []Clause) {
	sent := nlp.Sentence{Index: index, Text: text, Tokens: token.Tokenize(text)}
	p.annotate(&sent)
	return sent, Detect(&sent)
}

// AnnotateDocument tokenizes and annotates a whole document in place and
// returns the clauses per sentence.
func (p *Pipeline) AnnotateDocument(doc *nlp.Document) [][]Clause {
	if len(doc.Sentences) == 0 {
		doc.Sentences = token.TokenizeSentences(doc.Text)
	}
	out := make([][]Clause, len(doc.Sentences))
	for i := range doc.Sentences {
		p.annotate(&doc.Sentences[i])
		out[i] = Detect(&doc.Sentences[i])
	}
	return out
}

// AnnotateDocumentScratch is AnnotateDocument with caller-owned scratch:
// the returned [][]Clause (and every Clause in it) is recycled on the next
// call with the same Scratch, so per-worker annotation stops allocating
// clause storage once the buffers have grown. The document itself
// (sentences, tokens, annotations) is owned by the caller as usual.
func (p *Pipeline) AnnotateDocumentScratch(doc *nlp.Document, sc *Scratch) [][]Clause {
	if len(doc.Sentences) == 0 {
		doc.Sentences = token.TokenizeSentences(doc.Text)
	}
	n := len(doc.Sentences)
	out := sc.bySent
	if cap(out) < n {
		grown := make([][]Clause, n)
		copy(grown, out[:len(out)])
		out = grown
	} else {
		out = out[:cap(out)][:n]
	}
	for i := range doc.Sentences {
		p.annotateScratch(&doc.Sentences[i], sc)
		out[i] = detectScratch(&doc.Sentences[i], out[i][:0], sc)
	}
	sc.bySent = out
	return out
}

func (p *Pipeline) annotate(sent *nlp.Sentence) {
	pos.Tag(sent)
	lemma.Annotate(sent)
	sutime.Annotate(sent)
	p.ner.Annotate(sent)
	chunk.Chunk(sent)
	depparse.Parse(sent, p.mode)
}

func (p *Pipeline) annotateScratch(sent *nlp.Sentence, sc *Scratch) {
	pos.Tag(sent)
	lemma.Annotate(sent)
	sutime.Annotate(sent)
	p.ner.Annotate(sent)
	chunk.Chunk(sent)
	depparse.ParseScratch(sent, p.mode, &sc.Dep)
}
