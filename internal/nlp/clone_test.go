package nlp_test

import (
	"reflect"
	"testing"

	"qkbfly/internal/corpus"
	"qkbfly/internal/nlp"
	"qkbfly/internal/nlp/clause"
	"qkbfly/internal/nlp/depparse"
)

// snapshotDoc makes an independent deep copy for later comparison, without
// using Document.Clone itself (the method under test).
func snapshotDoc(d *nlp.Document) *nlp.Document {
	cp := *d
	cp.Sentences = make([]nlp.Sentence, len(d.Sentences))
	for i := range d.Sentences {
		s := d.Sentences[i]
		s.Tokens = append([]nlp.Token(nil), s.Tokens...)
		s.Chunks = append([]nlp.Chunk(nil), s.Chunks...)
		s.Mentions = append([]nlp.Mention(nil), s.Mentions...)
		cp.Sentences[i] = s
	}
	cp.Anchors = append([]nlp.Anchor(nil), d.Anchors...)
	return &cp
}

// TestCloneIsolation: annotating a cloned document (what every
// query-driven build does to indexed documents) must not mutate the
// original in any field — tokens, chunks, mentions or anchors.
func TestCloneIsolation(t *testing.T) {
	world := corpus.NewWorld(corpus.SmallConfig())
	pipe := clause.NewPipeline(world.Repo, depparse.Malt)

	orig := corpus.Docs(world.WikiDataset(1))[0]
	// Annotate once so the original carries the full mutable state
	// (tokens, POS, NER, mentions, chunks, dependency arcs).
	pipe.AnnotateDocument(orig)
	before := snapshotDoc(orig)

	cl := orig.Clone()
	pipe.AnnotateDocument(cl)
	if !reflect.DeepEqual(before, orig) {
		t.Fatal("annotating a clone mutated the original document")
	}

	// Direct writes into every cloned slice must not show through either.
	if len(cl.Sentences) == 0 || len(cl.Sentences[0].Tokens) == 0 {
		t.Fatal("clone has no sentences/tokens to perturb")
	}
	cl.Sentences[0].Tokens[0].Text = "MUTATED"
	cl.Sentences[0].Tokens[0].NER = nlp.NERPerson
	if len(cl.Sentences[0].Chunks) > 0 {
		cl.Sentences[0].Chunks[0].Start = -99
	}
	if len(cl.Sentences[0].Mentions) > 0 {
		cl.Sentences[0].Mentions[0].Start = -99
	}
	if len(cl.Anchors) > 0 {
		cl.Anchors[0].EntityID = "MUTATED"
	}
	if !reflect.DeepEqual(before, orig) {
		t.Fatal("writing into a clone's slices mutated the original document")
	}
}

// TestCloneIndependentAnnotation: two clones of the same indexed
// document annotate to identical results — re-annotation is reproducible.
func TestCloneIndependentAnnotation(t *testing.T) {
	world := corpus.NewWorld(corpus.SmallConfig())
	pipe := clause.NewPipeline(world.Repo, depparse.Malt)
	orig := corpus.Docs(world.WikiDataset(1))[0]
	pipe.AnnotateDocument(orig)

	c1, c2 := orig.Clone(), orig.Clone()
	pipe.AnnotateDocument(c1)
	pipe.AnnotateDocument(c2)
	if !reflect.DeepEqual(c1, c2) {
		t.Fatal("two clones annotated differently")
	}
}
