package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"qkbfly"
	"qkbfly/internal/kb/store"
	"qkbfly/internal/nlp"
	"qkbfly/internal/replica"
)

// Answerer answers natural-language questions; internal/qa's System
// satisfies it. It is declared here (structurally) so the HTTP layer does
// not import the qa package.
type Answerer interface {
	Answer(question string) []string
}

// ContextAnswerer is the context-aware variant; when the configured
// Answerer also implements it (qa.System does), /answer builds run under
// the request context and a disconnecting client cancels them.
type ContextAnswerer interface {
	AnswerContext(ctx context.Context, question string) []string
}

// HandlerOptions tune the HTTP endpoints.
type HandlerOptions struct {
	// DefaultSource restricts retrieval when the request omits ?source=
	// ("wikipedia", "news" or "" for both).
	DefaultSource string
	// DefaultSize and MaxSize bound the ?size= document count (defaults 1
	// and 50).
	DefaultSize int
	MaxSize     int
	// Answerer serves /answer; when nil the endpoint returns 503.
	Answerer Answerer
	// Session is the daemon's live ingestion session, serving POST /ingest,
	// POST /evict, GET /session, GET /facts and GET /deltas. When nil
	// those endpoints return 503.
	Session *qkbfly.Session
	// MaxIngestBytes bounds a POST /ingest body (default 8 MiB).
	MaxIngestBytes int64
	// Replica, on a following daemon (-follow), serves reads — /facts,
	// /query, /session — from the follower's last fingerprint-verified
	// KB instead of a Session, and surfaces role/lag through /healthz
	// and /stats. Mutually exclusive with Session.
	Replica *replica.Follower
	// StreamWriteTimeout bounds every single NDJSON record write on the
	// streaming endpoints (/facts, /query, /deltas, /analytics); a
	// consumer that stops reading is disconnected after one timeout
	// instead of pinning the connection through drain. Default 15s.
	StreamWriteTimeout time.Duration
	// Analytics serves GET /analytics from an incremental tracker over
	// the live session. When nil the endpoint returns 503.
	Analytics *qkbfly.AnalyticsTracker
	// StartTime stamps /stats uptime; zero means NewHandler's call time.
	StartTime time.Time
}

// NewHandler exposes a Server over HTTP/JSON:
//
//	GET  /kb?q=...&source=&size=&subject=&predicate=&object=&tau=&limit=
//	GET  /answer?q=...
//	POST /ingest                      {"docs":[{"id","title","source","text"}]}
//	POST /evict                       {"doc_ids":["..."]}
//	GET  /facts?since=&tau=&follow=   NDJSON stream of added facts
//	GET  /deltas?since=&follow=&snapshot=  replication stream: one
//	                                  fingerprint-stamped store.Delta per version
//	GET  /session                     live-session version + document window
//	GET  /analytics?follow=           incremental aggregates (cached JSON);
//	                                  follow= streams per-version analytic deltas
//	GET  /stats                       caches, counters, uptime, build, replication role
//	GET  /healthz                     role, version, staleness/lag
//
// Every build runs under the request context, so a disconnecting client
// cancels its in-flight construction. The session endpoints serve the
// live-updating KB of HandlerOptions.Session; on a follower
// (HandlerOptions.Replica) reads come from the last fingerprint-verified
// replicated version, and ?min_version=N pins read-your-writes (412 when
// the replica is still behind N).
func NewHandler(s *Server, opt HandlerOptions) http.Handler {
	if opt.DefaultSize <= 0 {
		opt.DefaultSize = 1
	}
	if opt.MaxSize <= 0 {
		opt.MaxSize = 50
	}
	if opt.MaxIngestBytes <= 0 {
		opt.MaxIngestBytes = 8 << 20
	}
	if opt.StartTime.IsZero() {
		opt.StartTime = time.Now()
	}
	acache := &analyticsCache{}
	mux := http.NewServeMux()
	mux.HandleFunc("/kb", func(w http.ResponseWriter, r *http.Request) {
		handleKB(s, opt, w, r)
	})
	mux.HandleFunc("/answer", func(w http.ResponseWriter, r *http.Request) {
		handleAnswer(opt, w, r)
	})
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) {
		handleIngest(opt, w, r)
	})
	mux.HandleFunc("/evict", func(w http.ResponseWriter, r *http.Request) {
		handleEvict(s, opt, w, r)
	})
	mux.HandleFunc("/facts", func(w http.ResponseWriter, r *http.Request) {
		handleFacts(opt, w, r)
	})
	mux.HandleFunc("/session", func(w http.ResponseWriter, r *http.Request) {
		handleSession(opt, w, r)
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		handleQuery(s, opt, w, r)
	})
	mux.HandleFunc("/deltas", func(w http.ResponseWriter, r *http.Request) {
		handleDeltas(s, opt, w, r)
	})
	mux.HandleFunc("/analytics", func(w http.ResponseWriter, r *http.Request) {
		handleAnalytics(acache, opt, w, r)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if !getOnly(w, r) {
			return
		}
		writeJSON(w, http.StatusOK, statsFor(s, opt))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !getOnly(w, r) {
			return
		}
		writeJSON(w, http.StatusOK, healthFor(s, opt))
	})
	return mux
}

// kbResponse is the /kb JSON shape.
type kbResponse struct {
	Query           string    `json:"query"`
	Source          string    `json:"source"`
	Size            int       `json:"size"`
	Docs            []docRef  `json:"docs"`
	FactCount       int       `json:"fact_count"`
	EntityCount     int       `json:"entity_count"`
	EmergingCount   int       `json:"emerging_count"`
	ElapsedNS       int64     `json:"elapsed_ns"`
	ServedFromCache bool      `json:"served_from_cache"`
	Joined          bool      `json:"joined_inflight"`
	Facts           []factRef `json:"facts"`
}

type docRef struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

type factRef struct {
	Subject    string   `json:"subject"`
	Relation   string   `json:"relation"`
	Objects    []string `json:"objects"`
	Confidence float64  `json:"confidence"`
	DocID      string   `json:"doc_id"`
	Sentence   int      `json:"sentence"`
}

func handleKB(s *Server, opt HandlerOptions, w http.ResponseWriter, r *http.Request) {
	if !getOnly(w, r) {
		return
	}
	if s == nil || !s.HasBackend() {
		// A follower daemon carries no construction pipeline; on-the-fly
		// builds happen on the leader.
		http.Error(w, "no construction backend configured", http.StatusServiceUnavailable)
		return
	}
	q := r.URL.Query()
	query := q.Get("q")
	if query == "" {
		http.Error(w, "missing required parameter q", http.StatusBadRequest)
		return
	}
	source := opt.DefaultSource
	if v, ok := q["source"]; ok {
		source = v[0]
	}
	// All parameters are validated before any engine work starts.
	size, err := intParam(q.Get("size"), opt.DefaultSize, 1)
	if err != nil {
		http.Error(w, "invalid size: "+err.Error(), http.StatusBadRequest)
		return
	}
	if size > opt.MaxSize {
		size = opt.MaxSize
	}
	limit, err := intParam(q.Get("limit"), 100, 0) // an explicit limit=0 lists no facts
	if err != nil {
		http.Error(w, "invalid limit: "+err.Error(), http.StatusBadRequest)
		return
	}
	var tau float64
	if v := q.Get("tau"); v != "" {
		tau, err = strconv.ParseFloat(v, 64)
		if err != nil {
			http.Error(w, "invalid tau: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	res, err := s.KB(r.Context(), query, source, size)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The client is gone (or gave up); nothing useful to write.
			http.Error(w, "build cancelled: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	facts := res.KB.Search(store.Query{
		Subject:   q.Get("subject"),
		Predicate: q.Get("predicate"),
		Object:    q.Get("object"),
		MinConf:   tau,
	})
	if len(facts) > limit {
		facts = facts[:limit]
	}
	resp := kbResponse{
		Query:           query,
		Source:          source,
		Size:            size,
		Docs:            []docRef{},
		FactCount:       res.KB.Len(),
		EntityCount:     len(res.KB.Entities()),
		EmergingCount:   res.KB.EmergingCount(),
		ElapsedNS:       int64(statsElapsed(res)),
		ServedFromCache: res.CacheHit,
		Joined:          res.Joined,
		Facts:           []factRef{},
	}
	for _, d := range res.Docs {
		resp.Docs = append(resp.Docs, docRef{ID: d.ID, Title: d.Title})
	}
	for _, f := range facts {
		fr := factRef{
			Subject:    f.Subject.String(),
			Relation:   f.Relation,
			Confidence: f.Confidence,
			DocID:      f.Source.DocID,
			Sentence:   f.Source.SentIndex,
		}
		for _, o := range f.Objects {
			fr.Objects = append(fr.Objects, o.String())
		}
		resp.Facts = append(resp.Facts, fr)
	}
	writeJSON(w, http.StatusOK, resp)
}

func handleAnswer(opt HandlerOptions, w http.ResponseWriter, r *http.Request) {
	if !getOnly(w, r) {
		return
	}
	if opt.Answerer == nil {
		http.Error(w, "no answerer configured", http.StatusServiceUnavailable)
		return
	}
	question := r.URL.Query().Get("q")
	if question == "" {
		http.Error(w, "missing required parameter q", http.StatusBadRequest)
		return
	}
	var answers []string
	if ca, ok := opt.Answerer.(ContextAnswerer); ok {
		answers = ca.AnswerContext(r.Context(), question)
	} else {
		answers = opt.Answerer.Answer(question)
	}
	if answers == nil {
		answers = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"question": question,
		"answers":  answers,
	})
}

// ingestDoc is one raw document in a POST /ingest body. Text is
// sentence-split and annotated by the pipeline on ingest.
type ingestDoc struct {
	ID     string `json:"id"`
	Title  string `json:"title"`
	Source string `json:"source"`
	Text   string `json:"text"`
}

// ingestResponse reports the outcome of one /ingest call.
type ingestResponse struct {
	Version   uint64 `json:"version"`
	Ingested  int    `json:"ingested"` // documents built and folded by this call
	Skipped   int    `json:"skipped"`  // documents already in the session
	Docs      int    `json:"docs"`     // documents now in the session window
	Facts     int    `json:"facts"`    // facts in the current snapshot
	ElapsedNS int64  `json:"elapsed_ns"`
}

func handleIngest(opt HandlerOptions, w http.ResponseWriter, r *http.Request) {
	if !postOnly(w, r) {
		return
	}
	if opt.Replica != nil {
		http.Error(w, "read-only follower: ingest on the leader", http.StatusForbidden)
		return
	}
	if opt.Session == nil {
		http.Error(w, "no ingestion session configured", http.StatusServiceUnavailable)
		return
	}
	var req struct {
		Docs []ingestDoc `json:"docs"`
	}
	body := http.MaxBytesReader(w, r.Body, opt.MaxIngestBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		http.Error(w, "invalid body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Docs) == 0 {
		http.Error(w, "body must carry at least one document", http.StatusBadRequest)
		return
	}
	docs := make([]*nlp.Document, 0, len(req.Docs))
	for i, d := range req.Docs {
		if d.ID == "" || d.Text == "" {
			http.Error(w, fmt.Sprintf("doc %d: id and text are required", i), http.StatusBadRequest)
			return
		}
		src := d.Source
		if src == "" {
			src = "news"
		}
		docs = append(docs, &nlp.Document{ID: d.ID, Title: d.Title, Source: src, Text: d.Text})
	}
	snap, bs, err := opt.Session.Ingest(r.Context(), docs)
	if err != nil {
		// A closed session (daemon draining) and a cancelled build are both
		// service conditions, not server faults.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
			errors.Is(err, qkbfly.ErrSessionClosed) {
			http.Error(w, "ingest unavailable: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	ingested := len(bs.PerDocElapsed)
	writeJSON(w, http.StatusOK, ingestResponse{
		Version:   snap.Version(),
		Ingested:  ingested,
		Skipped:   len(docs) - ingested,
		Docs:      len(opt.Session.Docs()),
		Facts:     snap.KB().Len(),
		ElapsedNS: int64(bs.Elapsed),
	})
}

func handleEvict(s *Server, opt HandlerOptions, w http.ResponseWriter, r *http.Request) {
	if !postOnly(w, r) {
		return
	}
	if opt.Replica != nil {
		http.Error(w, "read-only follower: evict on the leader", http.StatusForbidden)
		return
	}
	if opt.Session == nil {
		http.Error(w, "no ingestion session configured", http.StatusServiceUnavailable)
		return
	}
	var req struct {
		DocIDs []string `json:"doc_ids"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "invalid body: "+err.Error(), http.StatusBadRequest)
		return
	}
	// Drop the cached shards too, so re-ingesting one of these IDs with
	// different content rebuilds instead of folding the stale shard.
	s.InvalidateShards(req.DocIDs...)
	snap, removed := opt.Session.Evict(req.DocIDs...)
	writeJSON(w, http.StatusOK, map[string]any{
		"version": snap.Version(),
		"removed": removed,
		"docs":    len(opt.Session.Docs()),
		"facts":   snap.KB().Len(),
	})
}

func handleSession(opt HandlerOptions, w http.ResponseWriter, r *http.Request) {
	if !getOnly(w, r) {
		return
	}
	if opt.Session == nil && opt.Replica != nil {
		handleSessionReplica(opt, w, r)
		return
	}
	if opt.Session == nil {
		http.Error(w, "no ingestion session configured", http.StatusServiceUnavailable)
		return
	}
	snap := opt.Session.Snapshot()
	resp := map[string]any{
		"version":  snap.Version(),
		"docs":     opt.Session.Docs(),
		"facts":    snap.KB().Len(),
		"entities": len(snap.KB().Entities()),
	}
	if r.URL.Query().Get("fingerprint") != "" {
		resp["fingerprint"] = snap.Fingerprint()
	}
	writeJSON(w, http.StatusOK, resp)
}

// factLine is one NDJSON line of GET /facts.
type factLine struct {
	Version    uint64   `json:"version"`
	Subject    string   `json:"subject"`
	Relation   string   `json:"relation"`
	Objects    []string `json:"objects"`
	Confidence float64  `json:"confidence"`
	DocID      string   `json:"doc_id"`
	Sentence   int      `json:"sentence"`
}

func lineFor(v uint64, f *store.Fact) factLine {
	l := factLine{
		Version:    v,
		Subject:    f.Subject.String(),
		Relation:   f.Relation,
		Objects:    []string{},
		Confidence: f.Confidence,
		DocID:      f.Source.DocID,
		Sentence:   f.Source.SentIndex,
	}
	for _, o := range f.Objects {
		l.Objects = append(l.Objects, o.String())
	}
	return l
}

// handleFacts streams the facts the session added after ?since= as NDJSON
// (one JSON object per line), newest version stamped in the
// X-QKBfly-Version header. When since predates the retained history
// horizon, a {"reset":true} line is emitted followed by a full dump of
// the current snapshot — the client re-bases and resumes from the header
// version. With ?follow=1 the response then stays open, streaming facts
// as further ingests land, until the client disconnects.
func handleFacts(opt HandlerOptions, w http.ResponseWriter, r *http.Request) {
	if !getOnly(w, r) {
		return
	}
	sess := opt.Session
	if sess == nil && opt.Replica != nil {
		handleFactsReplica(opt, w, r)
		return
	}
	if sess == nil {
		http.Error(w, "no ingestion session configured", http.StatusServiceUnavailable)
		return
	}
	q := r.URL.Query()
	var since uint64
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "invalid since: "+err.Error(), http.StatusBadRequest)
			return
		}
		since = n
	}
	var tau float64
	if v := q.Get("tau"); v != "" {
		n, err := strconv.ParseFloat(v, 64)
		if err != nil {
			http.Error(w, "invalid tau: "+err.Error(), http.StatusBadRequest)
			return
		}
		tau = n
	}
	min, okMin := minVersionParam(w, r)
	if !okMin {
		return
	}
	follow := q.Get("follow") != ""
	if min > 0 && !checkMinVersion(w, sess.Snapshot().Version(), min) {
		return
	}

	// Attach the live tail before replaying history so no version can fall
	// between the two; replayed versions are skipped on the live channel.
	// The tail uses the request's own tau (not the session τ), matching
	// the replay filter.
	var live <-chan qkbfly.FactEvent
	if follow {
		live = sess.WatchMin(r.Context(), tau)
	}
	events, cur, ok := sess.FactsSince(since)
	var snap *qkbfly.Snapshot
	if !ok {
		// History behind since is gone: re-base on a full snapshot. The
		// snapshot may already be newer than the FactsSince horizon (an
		// ingest can land between the two calls); the header, the dump
		// stamps and the live-tail skip all use the snapshot's version so
		// the client never sees a fact twice.
		snap = sess.Snapshot()
		cur = snap.Version()
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-QKBfly-Version", strconv.FormatUint(cur, 10))
	w.WriteHeader(http.StatusOK)
	sw := newStreamWriter(w, opt.StreamWriteTimeout)

	if snap != nil {
		if sw.encode(map[string]any{"reset": true, "version": cur}) != nil {
			return
		}
		facts := snap.KB().Facts()
		for i := range facts {
			if facts[i].Confidence < tau {
				continue
			}
			if sw.encode(lineFor(cur, &facts[i])) != nil {
				return
			}
		}
	} else {
		for i := range events {
			if events[i].Fact.Confidence < tau {
				continue
			}
			if sw.encode(lineFor(events[i].Version, &events[i].Fact)) != nil {
				return
			}
		}
	}
	if !follow {
		return
	}
	for ev := range live {
		if ev.Version <= cur {
			continue // already replayed above
		}
		if sw.encode(lineFor(ev.Version, &ev.Fact)) != nil {
			return // client gone or write deadline hit
		}
	}
}

func statsElapsed(res *Result) time.Duration {
	if res.Stats == nil {
		return 0
	}
	return res.Stats.Elapsed
}

func getOnly(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

func postOnly(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

// intParam parses an optional integer query parameter: absent means def,
// and malformed or below-minimum values are errors (400), never silently
// replaced.
func intParam(v string, def, min int) (int, error) {
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, err
	}
	if n < min {
		return 0, fmt.Errorf("%d is below the minimum %d", n, min)
	}
	return n, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
