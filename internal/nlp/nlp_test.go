package nlp

import "testing"

func sentence() *Sentence {
	// "Brad Pitt married Angelina Jolie" with a hand-built tree.
	return &Sentence{
		Text: "Brad Pitt married Angelina Jolie",
		Tokens: []Token{
			{Text: "Brad", POS: NNP, Head: 1, DepRel: DepCompound},
			{Text: "Pitt", POS: NNP, Head: 2, DepRel: DepNsubj},
			{Text: "married", POS: VBD, Head: -1, DepRel: DepRoot},
			{Text: "Angelina", POS: NNP, Head: 4, DepRel: DepCompound},
			{Text: "Jolie", POS: NNP, Head: 2, DepRel: DepDobj},
		},
	}
}

func TestChildren(t *testing.T) {
	s := sentence()
	kids := s.Children(2)
	if len(kids) != 2 || kids[0] != 1 || kids[1] != 4 {
		t.Errorf("Children(married) = %v", kids)
	}
	if got := s.ChildrenByRel(2, DepNsubj); len(got) != 1 || got[0] != 1 {
		t.Errorf("ChildrenByRel(nsubj) = %v", got)
	}
	if got := s.ChildrenByRel(2, DepIobj); got != nil {
		t.Errorf("ChildrenByRel(iobj) = %v", got)
	}
}

func TestSubtree(t *testing.T) {
	s := sentence()
	if got := s.Subtree(4); len(got) != 2 {
		t.Errorf("Subtree(Jolie) = %v", got)
	}
	if got := s.Subtree(2); len(got) != 5 {
		t.Errorf("Subtree(root) = %v", got)
	}
	if got := s.Subtree(-1); got != nil {
		t.Errorf("Subtree(-1) = %v", got)
	}
}

func TestTokenText(t *testing.T) {
	s := sentence()
	if got := s.TokenText(0, 2); got != "Brad Pitt" {
		t.Errorf("TokenText = %q", got)
	}
	if got := s.TokenText(-5, 99); got != "Brad Pitt married Angelina Jolie" {
		t.Errorf("clamped TokenText = %q", got)
	}
	if got := s.TokenText(3, 3); got != "" {
		t.Errorf("empty range = %q", got)
	}
}

func TestPOSPredicates(t *testing.T) {
	if !NNP.IsNoun() || !NNP.IsProperNoun() {
		t.Error("NNP predicates")
	}
	if NN.IsProperNoun() {
		t.Error("NN is not proper")
	}
	if !VBD.IsVerb() || MD.IsVerb() {
		t.Error("verb predicates")
	}
	if !JJR.IsAdjective() || NN.IsAdjective() {
		t.Error("adjective predicates")
	}
}

func TestPronounGender(t *testing.T) {
	tests := []struct {
		text string
		want Gender
	}{
		{"he", GenderMale}, {"He", GenderMale}, {"his", GenderMale},
		{"she", GenderFemale}, {"her", GenderFemale},
		{"it", GenderNeuter}, {"its", GenderNeuter},
		{"they", GenderUnknown}, {"them", GenderUnknown},
	}
	for _, tt := range tests {
		if got := PronounGender(tt.text); got != tt.want {
			t.Errorf("PronounGender(%q) = %v, want %v", tt.text, got, tt.want)
		}
	}
}

func TestGenderString(t *testing.T) {
	if GenderMale.String() != "male" || GenderUnknown.String() != "unknown" {
		t.Error("Gender.String")
	}
}

func TestIsPronoun(t *testing.T) {
	if !IsPronoun(&Token{POS: PRP}) || !IsPronoun(&Token{POS: PRPS}) {
		t.Error("pronoun tags")
	}
	if IsPronoun(&Token{POS: NN}) {
		t.Error("NN is not a pronoun")
	}
}

func TestDocumentTokens(t *testing.T) {
	d := Document{Sentences: []Sentence{*sentence(), *sentence()}}
	if got := d.Tokens(); len(got) != 10 {
		t.Errorf("Tokens() = %d", len(got))
	}
}
