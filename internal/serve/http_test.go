package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"qkbfly/internal/serve"
)

type stubAnswerer struct{ answers []string }

func (s *stubAnswerer) Answer(string) []string { return s.answers }

func decodeJSON(t *testing.T, r io.Reader, v any) {
	t.Helper()
	if err := json.NewDecoder(r).Decode(v); err != nil {
		t.Fatalf("decode: %v", err)
	}
}

// TestServeHTTPEndpoints covers the daemon's handlers end to end against
// a fake backend: /healthz, /kb (cold, then served from cache), /stats
// and /answer, plus parameter validation and method restrictions.
func TestServeHTTPEndpoints(t *testing.T) {
	fb := &fakeBackend{}
	srv := serve.New(fb, serve.Options{})
	h := serve.NewHandler(srv, serve.HandlerOptions{
		DefaultSource: "wikipedia",
		Answerer:      &stubAnswerer{answers: []string{"Ostfield"}},
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(body)
	}

	// Health.
	resp, body := get("/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz: %d %q", resp.StatusCode, body)
	}

	// Validation and method restrictions.
	if resp, _ = get("/kb"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("/kb without q: %d, want 400", resp.StatusCode)
	}
	for _, bad := range []string{
		"/kb?q=x&size=abc", "/kb?q=x&size=0", "/kb?q=x&limit=-1",
		"/kb?q=x&limit=abc", "/kb?q=x&tau=0.9x",
	} {
		if resp, _ = get(bad); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400 (malformed parameters are rejected, not defaulted)", bad, resp.StatusCode)
		}
	}
	post, err := http.Post(ts.URL+"/kb?q=x", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /kb: %d, want 405", post.StatusCode)
	}

	// Cold /kb.
	var kb struct {
		Docs            []struct{ ID, Title string } `json:"docs"`
		FactCount       int                          `json:"fact_count"`
		ServedFromCache bool                         `json:"served_from_cache"`
		Facts           []struct {
			Subject  string   `json:"subject"`
			Relation string   `json:"relation"`
			Objects  []string `json:"objects"`
		} `json:"facts"`
	}
	resp, body = get("/kb?q=alpha&size=2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/kb: %d %q", resp.StatusCode, body)
	}
	decodeJSON(t, strings.NewReader(body), &kb)
	if len(kb.Docs) != 2 || kb.FactCount != 2 || len(kb.Facts) != 2 {
		t.Errorf("/kb cold: docs=%d facts=%d listed=%d, want 2/2/2", len(kb.Docs), kb.FactCount, len(kb.Facts))
	}
	if kb.ServedFromCache {
		t.Error("/kb cold claimed a cache hit")
	}

	// Warm /kb: same query, no further engine run.
	resp, body = get("/kb?q=alpha&size=2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/kb warm: %d", resp.StatusCode)
	}
	decodeJSON(t, strings.NewReader(body), &kb)
	if !kb.ServedFromCache {
		t.Error("/kb warm not served from cache")
	}
	if got := int(fb.runs.Load()); got != 1 {
		t.Errorf("engine build calls after warm hit = %d, want 1", got)
	}

	// An explicit limit=0 lists no facts but still reports the counts.
	resp, body = get("/kb?q=alpha&size=2&limit=0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/kb limit=0: %d", resp.StatusCode)
	}
	decodeJSON(t, strings.NewReader(body), &kb)
	if len(kb.Facts) != 0 || kb.FactCount != 2 {
		t.Errorf("/kb limit=0: listed=%d count=%d, want 0 listed / 2 counted", len(kb.Facts), kb.FactCount)
	}

	// Stats reflect the two requests.
	var snap serve.Snapshot
	resp, body = get("/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats: %d", resp.StatusCode)
	}
	decodeJSON(t, strings.NewReader(body), &snap)
	// One cold build, then two warm serves (the plain warm request and
	// the limit=0 listing).
	if snap.Counters[serve.CounterQueryHits] != 2 || snap.Counters[serve.CounterQueryMisses] != 1 {
		t.Errorf("/stats counters = %v, want 2 hits / 1 miss", snap.Counters)
	}
	if snap.QueryEntries != 1 || snap.ShardEntries != 2 {
		t.Errorf("/stats occupancy = %d queries / %d shards, want 1/2", snap.QueryEntries, snap.ShardEntries)
	}

	// Answering.
	var ans struct {
		Question string   `json:"question"`
		Answers  []string `json:"answers"`
	}
	resp, body = get("/answer?q=where+was+he+born")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/answer: %d %q", resp.StatusCode, body)
	}
	decodeJSON(t, strings.NewReader(body), &ans)
	if len(ans.Answers) != 1 || ans.Answers[0] != "Ostfield" {
		t.Errorf("/answer = %+v", ans)
	}
	if resp, _ = get("/answer"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("/answer without q: %d, want 400", resp.StatusCode)
	}

	// No answerer configured -> 503.
	bare := httptest.NewServer(serve.NewHandler(srv, serve.HandlerOptions{}))
	defer bare.Close()
	resp, err = http.Get(bare.URL + "/answer?q=x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/answer without answerer: %d, want 503", resp.StatusCode)
	}
}

// TestServeHTTPContextCancellationMidBuild: a client that disconnects
// mid-build cancels the engine run through the request context, and the
// aborted result is not cached — the next identical query rebuilds.
func TestServeHTTPContextCancellationMidBuild(t *testing.T) {
	fb := &fakeBackend{
		started:   make(chan struct{}, 1),
		release:   make(chan struct{}),
		cancelled: make(chan struct{}, 1),
	}
	srv := serve.New(fb, serve.Options{})
	ts := httptest.NewServer(serve.NewHandler(srv, serve.HandlerOptions{}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/kb?q=alpha", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("request succeeded with status %d, want cancellation", resp.StatusCode)
		}
		done <- err
	}()

	<-fb.started // the build is in flight
	cancel()     // client walks away
	if err := <-done; err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("client error = %v, want context cancellation", err)
	}
	<-fb.cancelled // the engine observed the cancellation

	// The partial build must not have been cached: a fresh request (with
	// the backend now unblocked) runs the engine again and succeeds. The
	// retry may briefly coalesce onto the dying flight and see its error,
	// so poll until the fresh build lands.
	close(fb.release)
	var (
		kb struct {
			ServedFromCache bool `json:"served_from_cache"`
			FactCount       int  `json:"fact_count"`
		}
		status int
	)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/kb?q=alpha")
		if err != nil {
			t.Fatal(err)
		}
		status = resp.StatusCode
		if status == http.StatusOK {
			decodeJSON(t, resp.Body, &kb)
			resp.Body.Close()
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("retry after cancellation never succeeded (last status %d)", status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if kb.ServedFromCache || kb.FactCount == 0 {
		t.Errorf("retry after cancellation: cached=%t facts=%d, want fresh successful build",
			kb.ServedFromCache, kb.FactCount)
	}
	if got := int(fb.runs.Load()); got != 2 {
		t.Errorf("engine build calls = %d, want 2 (cancelled + retry)", got)
	}
	if got := srv.Counters().Get(serve.CounterQueryHits); got != 0 {
		t.Errorf("query_hits = %d, want 0 (nothing was cached)", got)
	}
}

// TestServeHTTPGracefulShutdownDrains: http.Server.Shutdown must let an
// in-flight build finish and deliver its response before the daemon
// exits — the drain the daemon performs on SIGTERM.
func TestServeHTTPGracefulShutdownDrains(t *testing.T) {
	fb := &fakeBackend{
		started: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	srv := serve.New(fb, serve.Options{})
	httpSrv := &http.Server{Handler: serve.NewHandler(srv, serve.HandlerOptions{})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go httpSrv.Serve(ln)

	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	type reply struct {
		status int
		facts  int
		err    error
	}
	replies := make(chan reply, 1)
	go func() {
		resp, err := client.Get("http://" + ln.Addr().String() + "/kb?q=alpha&size=2")
		if err != nil {
			replies <- reply{err: err}
			return
		}
		var kb struct {
			FactCount int `json:"fact_count"`
		}
		err = json.NewDecoder(resp.Body).Decode(&kb)
		resp.Body.Close()
		replies <- reply{status: resp.StatusCode, facts: kb.FactCount, err: err}
	}()

	<-fb.started // request is mid-build
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- httpSrv.Shutdown(context.Background()) }()

	// New connections are refused while the old request drains.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := client.Get("http://" + ln.Addr().String() + "/healthz")
		if err != nil {
			break // listener closed by Shutdown
		}
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting after Shutdown began")
		}
		time.Sleep(10 * time.Millisecond)
	}

	close(fb.release) // let the in-flight build finish
	r := <-replies
	if r.err != nil {
		t.Fatalf("drained request failed: %v", r.err)
	}
	if r.status != http.StatusOK || r.facts != 2 {
		t.Errorf("drained request: status=%d facts=%d, want 200 with 2 facts", r.status, r.facts)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("Shutdown returned %v", err)
	}
}
